//! Real process-death crash harness (the out-of-process bar).
//!
//! The in-process durability tests (`dynamite-datalog/tests/durable.rs`)
//! simulate I/O failures as errors. This harness kills a real child
//! process — `abort(2)`, no unwinding, no destructors — at every durable
//! fault point and at arbitrary byte offsets mid-WAL-append, then
//! recovers the corpse's directory in *this* process and pins the result
//! bit-identically (contents **and** row order) against an uninterrupted
//! reference run of the same deterministic stream.
//!
//! Parent and child are different processes with different (and
//! deliberately skewed) string-interner states, so these tests are also
//! the cross-process determinism pin: join plans must be a function of
//! value content, never of interner ids.
//!
//! On any divergence the child's state directory is preserved under
//! `CARGO_TARGET_TMPDIR/crash-harness/<cell>/` for post-mortem (CI
//! uploads it as an artifact).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use dynamite_bench::crash_stream::{self, SEED, STREAM_LEN};
use dynamite_datalog::durable::DurableEvaluator;
use dynamite_datalog::{fault, pool, reorder_default};
use dynamite_instance::Value;

/// A scratch directory removed on drop (pass/fail alike — failures
/// preserve a *copy* first).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "dynamite-crash-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Bit-identity projection of one moment of maintained state: EDB and
/// derived output, relation contents in row order.
type Snap = (
    Vec<(String, Vec<Vec<Value>>)>,
    Vec<(String, Vec<Vec<Value>>)>,
);

fn snap(dur: &mut DurableEvaluator) -> Snap {
    let out = dur.output();
    (
        crash_stream::ordered_rows(dur.edb()),
        crash_stream::ordered_rows(&out),
    )
}

/// The uninterrupted reference timeline: `snaps[k]` is the state after
/// `k` applied batches. Runs on a real `DurableEvaluator` (not a plain
/// incremental one) so it shares the child's deterministic
/// replan-at-checkpoint schedule.
fn reference(profile: &str, threads: usize) -> Vec<Snap> {
    let tmp = TempDir::new(&format!("ref-{profile}-{threads}"));
    let mut dur = DurableEvaluator::create_with_config(
        tmp.path(),
        crash_stream::program(),
        crash_stream::seed_edb(),
        crash_stream::options(profile),
        pool::with_threads(Some(threads)),
        reorder_default(),
    )
    .expect("reference create");
    let mut snaps = vec![snap(&mut dur)];
    for (ins, dels) in crash_stream::batches(STREAM_LEN, SEED) {
        dur.apply_delta(&ins, &dels).expect("reference apply");
        snaps.push(snap(&mut dur));
    }
    snaps
}

/// Spawns the child binary on `dir` with a scrubbed `DYNAMITE_*`
/// environment plus the cell's own settings — the surrounding test
/// suite may itself run under fault-leg environment variables, and the
/// child must see only what the cell arms.
fn run_child(
    dir: &Path,
    profile: &str,
    threads: usize,
    envs: &[(&str, String)],
    extra: &[&str],
) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crash_child"));
    cmd.arg(dir)
        .arg(profile)
        .arg(threads.to_string())
        .arg(STREAM_LEN.to_string())
        .args(extra);
    for k in [
        "DYNAMITE_FAULT",
        "DYNAMITE_FAULT_MODE",
        "DYNAMITE_CRASH_OFFSET",
        "DYNAMITE_NO_REORDER",
    ] {
        cmd.env_remove(k);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn crash_child")
}

/// Recovers a (possibly mauled) child directory in this process,
/// scrubbing first — exactly what a supervisor restarting the real
/// service would do.
fn recover(dir: &Path, profile: &str, threads: usize, cell: &str) -> DurableEvaluator {
    match DurableEvaluator::open_or_create_with_config(
        dir,
        crash_stream::program(),
        crash_stream::seed_edb(),
        crash_stream::options(profile).scrub_on_open(true),
        pool::with_threads(Some(threads)),
        reorder_default(),
    ) {
        Ok(dur) => dur,
        Err(e) => {
            let kept = preserve(dir, cell);
            panic!("cell {cell}: recovery failed: {e} (state preserved at {kept:?})");
        }
    }
}

fn copy_tree(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_tree(&from, &to)?;
        } else {
            std::fs::copy(&from, &to)?;
        }
    }
    Ok(())
}

/// Copies a failing cell's directory somewhere `cargo clean`-stable so
/// CI can upload it; returns the destination.
fn preserve(dir: &Path, cell: &str) -> PathBuf {
    let safe: String = cell
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let dest = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("crash-harness")
        .join(safe);
    let _ = std::fs::remove_dir_all(&dest);
    let _ = copy_tree(dir, &dest);
    dest
}

/// One matrix cell: kill the child at the armed point, recover here,
/// pin the recovered state against the reference timeline at whatever
/// sequence number survived, then drive the stream to completion and
/// pin the final state too.
fn run_cell(profile: &str, spec: &str, offset: Option<usize>, threads: usize, snaps: &[Snap]) {
    let cell = match offset {
        Some(o) => format!("{profile}-{spec}-off{o}-t{threads}"),
        None => format!("{profile}-{spec}-t{threads}"),
    };
    let tmp = TempDir::new("cell");
    let mut envs = vec![
        ("DYNAMITE_FAULT", spec.to_string()),
        ("DYNAMITE_FAULT_MODE", "abort".to_string()),
    ];
    if let Some(o) = offset {
        envs.push(("DYNAMITE_CRASH_OFFSET", o.to_string()));
    }
    let out = run_child(tmp.path(), profile, threads, &envs, &[]);
    if out.status.success() {
        let kept = preserve(tmp.path(), &cell);
        panic!("cell {cell}: armed fault never fired — child ran to completion ({kept:?})");
    }

    let mut dur = recover(tmp.path(), profile, threads, &cell);
    let k = dur.next_seq() as usize;
    if k > STREAM_LEN {
        let kept = preserve(tmp.path(), &cell);
        panic!("cell {cell}: recovered past the stream (seq {k}) ({kept:?})");
    }
    if snap(&mut dur) != snaps[k] {
        let kept = preserve(tmp.path(), &cell);
        panic!(
            "cell {cell}: recovered state at seq {k} is not bit-identical to the \
             uninterrupted reference ({kept:?})"
        );
    }
    for (ins, dels) in crash_stream::batches(STREAM_LEN, SEED).into_iter().skip(k) {
        dur.apply_delta(&ins, &dels)
            .expect("post-recovery apply must succeed");
    }
    if snap(&mut dur) != snaps[STREAM_LEN] {
        let kept = preserve(tmp.path(), &cell);
        panic!(
            "cell {cell}: driving the recovered evaluator to completion diverged \
             from the reference ({kept:?})"
        );
    }
}

/// The kill matrix: every durable fault point (clean crash points, plus
/// the I/O-damage points upgraded to real death via abort mode), at
/// first and mid-stream firings, at thread counts 1 and 4.
#[test]
fn kill_matrix_recovers_bit_identically() {
    fault::reset();
    // (profile, DYNAMITE_FAULT spec, DYNAMITE_CRASH_OFFSET)
    let cells: &[(&str, &str, Option<usize>)] = &[
        // Death at clean points around the WAL append.
        ("walheavy", "crash-after-wal-append", None),
        ("walheavy", "crash-after-wal-append@5", None),
        // Death mid-append: a torn tail of 1 / 7 / 23 bytes.
        ("walheavy", "crash-wal-partial@3", Some(1)),
        ("walheavy", "crash-wal-partial@3", Some(7)),
        ("walheavy", "crash-wal-partial@3", Some(23)),
        // I/O damage then death (abort mode): torn frame, flipped bit.
        ("walheavy", "wal-torn-write", None),
        ("walheavy", "wal-torn-write@4", None),
        ("walheavy", "wal-bit-flip@2", None),
        // Checkpoint writes: partial file, death around temp/rename.
        // Skip 0 fires during `create` itself (death mid-bootstrap).
        ("aggressive", "checkpoint-partial", None),
        ("aggressive", "checkpoint-partial@3", None),
        ("aggressive", "crash-after-ckpt-temp", None),
        ("aggressive", "crash-after-ckpt-temp@2", None),
        ("aggressive", "crash-after-ckpt-rename", None),
        ("aggressive", "crash-after-ckpt-rename@2", None),
        // Death around WAL rotation (checkpoint-then-rotate window).
        ("aggressive", "crash-before-wal-rotate", None),
        ("aggressive", "crash-before-wal-rotate@2", None),
        ("aggressive", "crash-after-wal-rotate", None),
        ("aggressive", "crash-after-wal-rotate@2", None),
    ];
    for threads in [1usize, 4] {
        let walheavy = reference("walheavy", threads);
        let aggressive = reference("aggressive", threads);
        for &(profile, spec, offset) in cells {
            let snaps = if profile == "walheavy" {
                &walheavy
            } else {
                &aggressive
            };
            run_cell(profile, spec, offset, threads, snaps);
        }
    }
}

/// A killed child, re-run with faults cleared, finishes the stream from
/// wherever recovery put it — the supervisor-restart path, exercised
/// across a real process boundary rather than in-parent.
#[test]
fn killed_child_rerun_completes_the_stream() {
    fault::reset();
    let cases: &[(&str, &str)] = &[
        ("walheavy", "crash-after-wal-append@5"),
        ("aggressive", "crash-after-ckpt-rename@2"),
    ];
    for threads in [1usize, 4] {
        for &(profile, spec) in cases {
            let cell = format!("rerun-{profile}-{spec}-t{threads}");
            let snaps = reference(profile, threads);
            let tmp = TempDir::new("rerun");
            let envs = vec![
                ("DYNAMITE_FAULT", spec.to_string()),
                ("DYNAMITE_FAULT_MODE", "abort".to_string()),
            ];
            let out = run_child(tmp.path(), profile, threads, &envs, &[]);
            assert!(!out.status.success(), "cell {cell}: fault never fired");

            let out = run_child(tmp.path(), profile, threads, &[], &[]);
            if !out.status.success() {
                let kept = preserve(tmp.path(), &cell);
                panic!(
                    "cell {cell}: clean re-run failed ({kept:?}): {}",
                    String::from_utf8_lossy(&out.stderr)
                );
            }
            let mut dur = recover(tmp.path(), profile, threads, &cell);
            if dur.next_seq() as usize != STREAM_LEN || snap(&mut dur) != snaps[STREAM_LEN] {
                let kept = preserve(tmp.path(), &cell);
                panic!("cell {cell}: re-run final state diverges from reference ({kept:?})");
            }
        }
    }
}

/// Group commit loses **exactly** the un-fsync'd suffix: a child that
/// staged frames and died keeps every flushed batch and nothing after
/// the last flush.
#[test]
fn group_commit_crash_loses_only_the_staged_suffix() {
    fault::reset();
    let threads = 1usize;
    let snaps = reference("walheavy", threads);
    // (batches applied before abort, batches that must survive)
    for &(abort_after, survives) in &[(6usize, 4usize), (3usize, 0usize)] {
        let cell = format!("group-commit-abort{abort_after}");
        let tmp = TempDir::new("gc");
        let out = run_child(
            tmp.path(),
            "walheavy",
            threads,
            &[],
            &[
                "--group-commit",
                "4",
                "--abort-after",
                &abort_after.to_string(),
            ],
        );
        assert!(!out.status.success(), "cell {cell}: child should abort");

        let mut dur = recover(tmp.path(), "walheavy", threads, &cell);
        let k = dur.next_seq() as usize;
        if k != survives {
            let kept = preserve(tmp.path(), &cell);
            panic!(
                "cell {cell}: expected exactly {survives} batches to survive \
                 (the flushed prefix), recovered {k} ({kept:?})"
            );
        }
        if snap(&mut dur) != snaps[k] {
            let kept = preserve(tmp.path(), &cell);
            panic!("cell {cell}: surviving prefix is not bit-identical ({kept:?})");
        }
        for (ins, dels) in crash_stream::batches(STREAM_LEN, SEED).into_iter().skip(k) {
            dur.apply_delta(&ins, &dels).expect("post-recovery apply");
        }
        assert_eq!(snap(&mut dur), snaps[STREAM_LEN], "cell {cell}: completion");
    }
}

/// Cross-process determinism, no escape hatches: parent and child skew
/// their interners differently, the planner stays on, and a state
/// directory written wholly by the child recovers bit-identically in
/// the parent.
#[test]
fn cross_process_recovery_is_bit_identical_under_interner_skew() {
    fault::reset();
    crash_stream::skew_intern("parent");
    for threads in [1usize, 4] {
        let cell = format!("determinism-t{threads}");
        let snaps = reference("walheavy", threads);
        let tmp = TempDir::new("det");
        let out = run_child(
            tmp.path(),
            "walheavy",
            threads,
            &[],
            &["--skew", "child-divergent"],
        );
        assert!(
            out.status.success(),
            "cell {cell}: clean child run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut dur = recover(tmp.path(), "walheavy", threads, &cell);
        if dur.next_seq() as usize != STREAM_LEN || snap(&mut dur) != snaps[STREAM_LEN] {
            let kept = preserve(tmp.path(), &cell);
            panic!(
                "cell {cell}: child-written state does not recover bit-identically \
                 in a differently-interned parent ({kept:?})"
            );
        }
    }
}
