//! Criterion microbenchmarks: MDP breadth-first search on synthetic
//! output tables of growing width.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use dynamite_core::mdp_set;
use dynamite_instance::{FlatTable, Value};

fn table(cols: usize, rows: usize, twist: bool) -> FlatTable {
    FlatTable {
        columns: (0..cols).map(|c| format!("col{c}")).collect(),
        rows: (0..rows as i64)
            .map(|r| {
                (0..cols as i64)
                    .map(|c| {
                        // `twist` perturbs the last column of odd rows so
                        // the tables differ there.
                        if twist && c == cols as i64 - 1 && r % 2 == 1 {
                            Value::Int(r * 100 + c + 1)
                        } else {
                            Value::Int(r * 100 + c)
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<BTreeSet<_>>(),
    }
}

fn bench_mdp(c: &mut Criterion) {
    let mut g = c.benchmark_group("mdp");
    g.sample_size(20);
    for cols in [4usize, 6, 8] {
        let actual = table(cols, 64, false);
        let expected = table(cols, 64, true);
        g.bench_function(format!("bfs_{cols}cols_64rows"), |bench| {
            bench.iter(|| {
                let r = mdp_set(&actual, &expected, 20_000);
                assert!(!r.mdps.is_empty());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mdp);
criterion_main!(benches);
