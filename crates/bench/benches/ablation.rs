//! Ablation bench: MDP-guided blocking vs plain model blocking on the same
//! benchmark (the design choice DESIGN.md calls out; aggregate version of
//! Figure 9a).

use criterion::{criterion_group, criterion_main, Criterion};
use dynamite_bench_suite::by_name;
use dynamite_core::{synthesize, Strategy, SynthesisConfig};

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/blocking");
    g.sample_size(10);
    let b = by_name("Tencent-1").expect("benchmark exists");
    let ex = b.example();
    for (label, strategy) in [
        ("mdp_guided", Strategy::MdpGuided),
        ("enumerative", Strategy::Enumerative),
    ] {
        let config = SynthesisConfig {
            strategy,
            ..Default::default()
        };
        g.bench_function(label, |bench| {
            bench.iter(|| {
                synthesize(b.source(), b.target(), std::slice::from_ref(&ex), &config)
                    .expect("synthesis succeeds")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
