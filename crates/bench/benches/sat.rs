//! Criterion microbenchmarks: the CDCL SAT core and the finite-domain
//! layer under blocking-clause pressure.

use criterion::{criterion_group, criterion_main, Criterion};
use dynamite_smt::{FdLit, FdSolver, Lit, SatSolver};

#[allow(clippy::needless_range_loop)]
fn bench_pigeonhole(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat");
    g.sample_size(10);
    g.bench_function("sat/pigeonhole_7_into_6", |bench| {
        bench.iter(|| {
            let (p, h) = (7usize, 6usize);
            let mut s = SatSolver::new();
            let vars: Vec<Vec<_>> = (0..p)
                .map(|_| (0..h).map(|_| s.new_var()).collect())
                .collect();
            for row in &vars {
                let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
                s.add_clause(&c);
            }
            for j in 0..h {
                for a in 0..p {
                    for b in (a + 1)..p {
                        let (x, y) = (vars[a][j], vars[b][j]);
                        s.add_clause(&[Lit::neg(x), Lit::neg(y)]);
                    }
                }
            }
            assert!(!s.solve());
        })
    });
    g.finish();
}

fn bench_fd_model_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("fd");
    g.sample_size(10);
    g.bench_function("fd/enumerate_4x6_models", |bench| {
        bench.iter(|| {
            let mut s = FdSolver::new();
            let consts: Vec<_> = (0..6).map(|i| s.constant(&format!("c{i}"))).collect();
            let vars: Vec<_> = (0..4)
                .map(|i| s.new_var(&format!("x{i}"), &consts).expect("var"))
                .collect();
            let mut n = 0usize;
            while let Some(m) = s.solve() {
                n += 1;
                let block: Vec<FdLit> = vars.iter().map(|&x| FdLit::Eq(x, m.value(x))).collect();
                s.block(&block).expect("block");
            }
            assert_eq!(n, 6usize.pow(4));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pigeonhole, bench_fd_model_enumeration);
criterion_main!(benches);
