//! Criterion microbenchmarks: end-to-end synthesis on representative
//! benchmarks of each migration kind.

use criterion::{criterion_group, criterion_main, Criterion};
use dynamite_bench_suite::by_name;
use dynamite_core::{synthesize, SynthesisConfig};

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(10);
    for name in ["Tencent-1", "Bike-3", "MLB-1", "Movie-1"] {
        let b = by_name(name).expect("benchmark exists");
        let ex = b.example();
        g.bench_function(name, |bench| {
            bench.iter(|| {
                synthesize(
                    b.source(),
                    b.target(),
                    std::slice::from_ref(&ex),
                    &SynthesisConfig::default(),
                )
                .expect("synthesis succeeds")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
