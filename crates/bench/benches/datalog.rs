//! Criterion microbenchmarks: Datalog evaluation (join-heavy golden
//! programs on generated instances, plus recursive closure).

use criterion::{criterion_group, criterion_main, Criterion};
use dynamite_bench_suite::by_name;
use dynamite_datalog::{evaluate, Program};
use dynamite_instance::{to_facts, Database};

fn bench_golden_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("datalog/golden");
    g.sample_size(20);
    for name in ["Bike-3", "Soccer-1"] {
        let b = by_name(name).expect("benchmark exists");
        let facts = to_facts(&b.generate_source(4, 3));
        g.bench_function(name, |bench| {
            bench.iter(|| evaluate(b.golden(), &facts).expect("golden evaluates"))
        });
    }
    g.finish();
}

fn bench_transitive_closure(c: &mut Criterion) {
    let program = Program::parse(
        "Path(x, y) :- Edge(x, y).
         Path(x, z) :- Path(x, y), Edge(y, z).",
    )
    .expect("parses");
    let mut db = Database::new();
    // A chain plus periodic shortcuts: 400 nodes.
    for i in 0..400i64 {
        db.insert("Edge", vec![i.into(), (i + 1).into()]);
        if i % 7 == 0 {
            db.insert("Edge", vec![i.into(), ((i + 13) % 400).into()]);
        }
    }
    let mut g = c.benchmark_group("datalog");
    g.sample_size(20);
    g.bench_function("transitive_closure_400", |bench| {
        bench.iter(|| evaluate(&program, &db).expect("evaluates"))
    });
    g.finish();
}

criterion_group!(benches, bench_golden_eval, bench_transitive_closure);
criterion_main!(benches);
