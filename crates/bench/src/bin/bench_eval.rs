//! Evaluation-pipeline microbenchmarks with JSON output.
//!
//! Runs the `datalog/golden` evaluation cases, a recursive-closure case,
//! the synthesis microbenchmarks, the repeated-candidate workload the
//! synthesizer's CEGIS loop exercises (one EDB, many candidate programs),
//! and a parallel-scaling sweep of the worker-pool fixpoint (threads =
//! 1/2/4/8), comparing the reusable [`Evaluator`] context against the
//! legacy one-shot interpreter. Writes `BENCH_eval.json` so later PRs
//! have a perf trajectory to compare against.
//!
//! Usage: `cargo run --release -p dynamite-bench --bin bench_eval [out.json]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use dynamite_bench_suite::by_name;
use dynamite_core::{synthesize, SynthesisConfig};
use dynamite_datalog::{legacy, Evaluator, Program, WorkerPool};
use dynamite_instance::hash::FxHashMap;
use dynamite_instance::{to_facts, ColumnIndex, Database, TupleStore, Value};

struct EvalCase {
    name: String,
    facts_in: usize,
    facts_out: usize,
    reps: usize,
    legacy_secs: f64,
    context_secs: f64,
}

impl EvalCase {
    fn speedup(&self) -> f64 {
        self.legacy_secs / self.context_secs.max(1e-12)
    }

    /// Derived facts per second through the context engine.
    fn facts_per_sec(&self) -> f64 {
        self.facts_out as f64 / self.context_secs.max(1e-12)
    }
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (also populates the context's index caches)
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// One golden-program evaluation case: `reps` evaluations of the same
/// program against the same EDB through both engines.
fn eval_case(name: &str, program: &Program, facts: &Database, reps: usize) -> EvalCase {
    let ctx = Evaluator::from_database(facts);
    let facts_out = ctx.eval(program).expect("evaluates").num_facts();
    let context_secs = time_reps(reps, || {
        ctx.eval(program).expect("evaluates");
    });
    let legacy_secs = time_reps(reps, || {
        legacy::evaluate(program, facts).expect("evaluates");
    });
    EvalCase {
        name: name.to_string(),
        facts_in: facts.num_facts(),
        facts_out,
        reps,
        legacy_secs,
        context_secs,
    }
}

/// Candidate programs shaped like the synthesizer's samples over the
/// Retina schema: joins over `Neuron`/`Contact` with varying column
/// bindings, projections, and an occasional negated literal.
fn candidate_programs(n: usize) -> Vec<Program> {
    let neuron_cols = ["n", "t", "l", "s"];
    let contact_cols = ["a", "b", "w", "k"];
    let mut out: Vec<Program> = Vec::new();
    fn push(out: &mut Vec<Program>, src: String) {
        out.push(Program::parse(&src).expect("candidate parses"));
    }
    // Single-join candidates: which Contact column joins Neuron's id.
    for (i, jc) in contact_cols.iter().enumerate() {
        let _ = jc;
        let mut c = contact_cols;
        c[i] = "n";
        push(
            &mut out,
            format!(
                "Out(n, t, x) :- Neuron(n, t, _, _), Contact({}, {}, {}, {}), E(x).",
                c[0], c[1], c[2], c[3]
            ),
        );
    }
    // Two-join candidates: vary the second Neuron's join column.
    for nc in neuron_cols {
        for cc in ["b", "w"] {
            push(
                &mut out,
                format!(
                    "Out(n, {nc}2, {cc}) :- Neuron(n, _, l, s), Contact(n, {cc}0, {cc}, _), \
                     Neuron({cc}0, {nc}2, l, s)."
                ),
            );
        }
    }
    // Three-join chains through two contacts.
    for k in 0..4 {
        push(
            &mut out,
            format!(
                "Out(n, q, w) :- Neuron(n, _, _, _), Contact(n, m, w{k}, _), Contact(m, q, w, _)."
            ),
        );
    }
    // Negation candidates.
    for col in ["l", "s"] {
        push(
            &mut out,
            format!("Out(n, {col}) :- Neuron(n, _, l, s), !Contact(n, _, _, \"chemical\")."),
        );
    }
    // Constant-filter variants to fill up to `n` distinct programs.
    let mut layer = 1;
    while out.len() < n {
        push(
            &mut out,
            format!("Out(n, q, w) :- Neuron(n, _, {layer}, _), Contact(n, q, w, _)."),
        );
        layer += 1;
    }
    out.truncate(n);
    out
}

struct RepeatedCase {
    candidates: usize,
    facts_in: usize,
    legacy_secs: f64,
    context_secs: f64,
}

/// The acceptance-criterion workload: the same EDB, ≥50 candidate
/// programs, exactly as the synthesizer loop evaluates them. The legacy
/// path pays full setup per candidate (EDB clone, per-round compiles,
/// per-round index builds); the context path prepares once.
fn repeated_candidates(facts: &Database, programs: &[Program]) -> RepeatedCase {
    // Warm-up both paths once.
    let warm = Evaluator::from_database(facts);
    for p in programs {
        warm.eval(p).expect("candidate evaluates");
        legacy::evaluate(p, facts).expect("candidate evaluates");
    }

    // A CEGIS run evaluates its candidate pool hundreds of times; sweep
    // the pool several times so the measurement is stable.
    const SWEEPS: usize = 10;
    let start = Instant::now();
    let ctx = Evaluator::from_database(facts); // part of the measured cost
    for _ in 0..SWEEPS {
        for p in programs {
            ctx.eval(p).expect("candidate evaluates");
        }
    }
    let context_secs = start.elapsed().as_secs_f64() / SWEEPS as f64;

    let start = Instant::now();
    for _ in 0..SWEEPS {
        for p in programs {
            legacy::evaluate(p, facts).expect("candidate evaluates");
        }
    }
    let legacy_secs = start.elapsed().as_secs_f64() / SWEEPS as f64;

    RepeatedCase {
        candidates: programs.len(),
        facts_in: facts.num_facts(),
        legacy_secs,
        context_secs,
    }
}

struct IndexBuildCase {
    rows: usize,
    key_cols: Vec<usize>,
    reps: usize,
    row_secs: f64,
    columnar_secs: f64,
}

impl IndexBuildCase {
    fn speedup(&self) -> f64 {
        self.row_secs / self.columnar_secs.max(1e-12)
    }
}

/// Index-build microbenchmark: the columnar `ColumnIndex::build` sweep
/// over `TupleStore` column slices vs the former row-oriented layout
/// (`Arc<[Value]>` tuples, one pointer chase per tuple per key column).
fn index_build_case(store: &TupleStore, key_cols: &[usize], reps: usize) -> IndexBuildCase {
    // Materialize the old representation once, outside the timed region.
    let row_tuples: Vec<Arc<[Value]>> = store.iter().map(|r| Arc::from(r.to_vec())).collect();

    let columnar_secs = time_reps(reps, || {
        std::hint::black_box(ColumnIndex::build(store, key_cols));
    });
    let row_secs = time_reps(reps, || {
        // The pre-columnar build: iterate shared tuples, chase each
        // pointer, gather the key per tuple.
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for (i, t) in row_tuples.iter().enumerate() {
            let key: Vec<Value> = key_cols.iter().map(|&c| t[c]).collect();
            map.entry(key).or_default().push(i);
        }
        std::hint::black_box(map);
    });
    IndexBuildCase {
        rows: store.len(),
        key_cols: key_cols.to_vec(),
        reps,
        row_secs,
        columnar_secs,
    }
}

/// A join-shaped relation for the index-build microbenchmark, loaded
/// through the bulk columnar path.
fn index_build_store(rows: usize) -> TupleStore {
    let strings = ["chemical", "electric", "mixed", "unknown"];
    let cols: Vec<Vec<Value>> = vec![
        (0..rows).map(|i| Value::Int((i % 97) as i64)).collect(),
        (0..rows).map(|i| Value::str(strings[i % 4])).collect(),
        (0..rows).map(|i| Value::Id((i % 53) as u64)).collect(),
        (0..rows).map(|i| Value::Int(i as i64)).collect(),
    ];
    TupleStore::from_columns(cols)
}

struct ScalingCase {
    workload: &'static str,
    threads: usize,
    secs: f64,
}

/// Thread-scaling sweep over explicit pools: the recursive-closure
/// fixpoint (partitioned outer scans) and the repeated-candidate sweep
/// (whole-variant fan-out), at 1/2/4/8 workers. `threads = 1` is the
/// sequential fallback and doubles as its regression guard.
fn parallel_scaling(
    closure: &Program,
    edges: &Database,
    facts: &Database,
    programs: &[Program],
) -> Vec<ScalingCase> {
    let mut out = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pool = Arc::new(WorkerPool::new(threads));
        let ctx = Evaluator::with_pool(edges.clone(), pool.clone());
        let secs = time_reps(5, || {
            ctx.eval(closure).expect("evaluates");
        });
        out.push(ScalingCase {
            workload: "transitive_closure_400",
            threads,
            secs,
        });
        let ctx = Evaluator::with_pool(facts.clone(), pool);
        let secs = time_reps(5, || {
            for p in programs {
                ctx.eval(p).expect("candidate evaluates");
            }
        });
        out.push(ScalingCase {
            workload: "repeated_candidates_sweep",
            threads,
            secs,
        });
        eprintln!("parallel_scaling threads={threads} done");
    }
    out
}

struct SynthCase {
    name: String,
    secs: f64,
    iterations: usize,
}

fn synth_case(name: &str) -> SynthCase {
    let b = by_name(name).expect("benchmark exists");
    let ex = b.example();
    let start = Instant::now();
    let result = synthesize(
        b.source(),
        b.target(),
        std::slice::from_ref(&ex),
        &SynthesisConfig::default(),
    )
    .expect("synthesis succeeds");
    SynthCase {
        name: format!("synthesis/{name}"),
        secs: start.elapsed().as_secs_f64(),
        iterations: result.stats.total_iterations(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_eval.json".to_string());

    // --- datalog/golden: join-heavy golden programs on generated data.
    let mut eval_cases = Vec::new();
    for name in ["Bike-3", "Soccer-1"] {
        let b = by_name(name).expect("benchmark exists");
        let facts = to_facts(&b.generate_source(4, 3));
        eval_cases.push(eval_case(&format!("golden/{name}"), b.golden(), &facts, 20));
        eprintln!("done golden/{name}");
    }

    // --- recursive closure (exercises semi-naive delta indexes).
    let closure = Program::parse(
        "Path(x, y) :- Edge(x, y).
         Path(x, z) :- Path(x, y), Edge(y, z).",
    )
    .expect("parses");
    let mut edges = Database::new();
    edges.extend_rows(
        "Edge",
        2,
        (0..400i64).flat_map(|i| {
            let chain = vec![i.into(), (i + 1).into()];
            let skip = (i % 7 == 0).then(|| vec![i.into(), ((i + 13) % 400).into()]);
            std::iter::once(chain).chain(skip)
        }),
    );
    eval_cases.push(eval_case(
        "datalog/transitive_closure_400",
        &closure,
        &edges,
        5,
    ));
    eprintln!("done transitive closure");

    // --- repeated candidates: one EDB, many programs (CEGIS shape).
    let retina = by_name("Retina-2").expect("benchmark exists");
    let mut facts = to_facts(&retina.generate_source(8, 7));
    // The single-join candidates also scan a tiny unary relation.
    for v in 0..5i64 {
        facts.insert("E", vec![v.into()]);
    }
    let programs = candidate_programs(60);
    let repeated = repeated_candidates(&facts, &programs);
    eprintln!(
        "repeated candidates: {}x speedup ({} candidates, {} facts)",
        repeated.legacy_secs / repeated.context_secs.max(1e-12),
        repeated.candidates,
        repeated.facts_in
    );

    // --- parallel scaling: pool fan-out at 1/2/4/8 workers.
    let scaling = parallel_scaling(&closure, &edges, &facts, &programs);

    // --- index builds: columnar sweep vs the former row-oriented chase.
    let store = index_build_store(50_000);
    let index_cases: Vec<IndexBuildCase> = [vec![0usize], vec![0, 2], vec![1, 2, 3]]
        .into_iter()
        .map(|cols| {
            let c = index_build_case(&store, &cols, 40);
            eprintln!(
                "index_build cols {:?}: {:.2}x columnar speedup",
                c.key_cols,
                c.speedup()
            );
            c
        })
        .collect();

    // --- synthesis end-to-end (the consumer of all of the above).
    let synth_cases: Vec<SynthCase> = ["Tencent-1", "Bike-3", "MLB-1"]
        .iter()
        .map(|n| {
            let c = synth_case(n);
            eprintln!("done {}", c.name);
            c
        })
        .collect();

    // --- hand-rolled JSON (the workspace is dependency-free offline).
    let mut j = String::from("{\n");
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    j.push_str(&format!("  \"unix_time\": {epoch},\n"));
    j.push_str("  \"cases\": [\n");
    for (i, c) in eval_cases.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"facts_in\": {}, \"facts_out\": {}, \"reps\": {}, \
             \"legacy_secs_per_eval\": {:.6}, \"context_secs_per_eval\": {:.6}, \
             \"speedup\": {:.2}, \"facts_per_sec\": {:.0}}}{}\n",
            c.name,
            c.facts_in,
            c.facts_out,
            c.reps,
            c.legacy_secs,
            c.context_secs,
            c.speedup(),
            c.facts_per_sec(),
            if i + 1 < eval_cases.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"repeated_candidates\": {{\"candidates\": {}, \"facts_in\": {}, \
         \"legacy_secs\": {:.6}, \"context_secs\": {:.6}, \"speedup\": {:.2}}},\n",
        repeated.candidates,
        repeated.facts_in,
        repeated.legacy_secs,
        repeated.context_secs,
        repeated.legacy_secs / repeated.context_secs.max(1e-12),
    ));
    j.push_str("  \"index_build\": [\n");
    for (i, c) in index_cases.iter().enumerate() {
        let cols: Vec<String> = c.key_cols.iter().map(usize::to_string).collect();
        j.push_str(&format!(
            "    {{\"rows\": {}, \"key_cols\": [{}], \"reps\": {}, \
             \"row_secs_per_build\": {:.6}, \"columnar_secs_per_build\": {:.6}, \
             \"speedup\": {:.2}}}{}\n",
            c.rows,
            cols.join(", "),
            c.reps,
            c.row_secs,
            c.columnar_secs,
            c.speedup(),
            if i + 1 < index_cases.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"parallel_scaling\": {{\"hardware_threads\": {}, \"cases\": [\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    for (i, c) in scaling.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"secs\": {:.6}}}{}\n",
            c.workload,
            c.threads,
            c.secs,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]},\n");
    // Perf trajectory: earlier PRs' headline numbers kept verbatim (so a
    // fresh run still records where the engine came from), plus this PR's
    // measured headline.
    j.push_str(
        "  \"history\": [\n    {\"pr\": 1, \"storage\": \"row (Arc<[Value]>)\", \
         \"repeated_candidates_context_secs\": 0.003963, \
         \"repeated_candidates_speedup\": 3.90},\n    {\"pr\": 2, \
         \"storage\": \"columnar (TupleStore)\", \
         \"repeated_candidates_context_secs\": 0.002964, \
         \"repeated_candidates_speedup\": 3.91},\n",
    );
    j.push_str(&format!(
        "    {{\"pr\": 3, \"storage\": \"columnar + worker pool\", \
         \"repeated_candidates_context_secs\": {:.6}, \
         \"repeated_candidates_speedup\": {:.2}}}\n  ],\n",
        repeated.context_secs,
        repeated.legacy_secs / repeated.context_secs.max(1e-12),
    ));
    j.push_str("  \"synthesis\": [\n");
    for (i, c) in synth_cases.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs\": {:.4}, \"iterations\": {}}}{}\n",
            c.name,
            c.secs,
            c.iterations,
            if i + 1 < synth_cases.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");

    std::fs::write(&out_path, &j).expect("write BENCH_eval.json");
    println!("{j}");
    eprintln!("wrote {out_path}");
}
