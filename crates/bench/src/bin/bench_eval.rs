//! Evaluation-pipeline microbenchmarks with JSON output.
//!
//! Runs the `datalog/golden` evaluation cases, a recursive-closure case,
//! the synthesis microbenchmarks, the repeated-candidate workload the
//! synthesizer's CEGIS loop exercises (one EDB, many candidate programs),
//! the adversarially ordered `join_ordering` workload (cost-based planner
//! vs body-order plans), the `batch_filter` kernel microbench (scalar
//! pre-scan vs the SIMD bitmask kernel over the SoA tag/payload streams),
//! the `update_stream` incremental-maintenance workload
//! ([`IncrementalEvaluator::apply_delta`] vs full re-evaluation over a
//! stream of small mixed batches), the `point_query` demand-driven
//! serving workload (magic-sets rewrite vs full materialization vs warm
//! subsumption cache on selective lookups), the `durability` workload (the same
//! stream through a WAL-logging [`DurableEvaluator`] vs the in-memory
//! maintainer, plus checkpoint-write and cold-recovery latencies), and a
//! parallel-scaling sweep of the
//! worker-pool fixpoint (threads = 1/2/4/8, skipped on single-core
//! hardware), comparing the reusable [`Evaluator`] context against the
//! legacy one-shot interpreter. Writes `BENCH_eval.json` so later PRs
//! have a perf trajectory to compare against. See `BENCHMARKS.md` at the
//! repo root for each workload's shape and how to read the numbers.
//!
//! Usage:
//! `cargo run --release -p dynamite-bench --bin bench_eval [out.json] [--case <name>]`
//!
//! `--case` restricts the run to a single workload (an unknown name
//! lists the available ones); the JSON then contains only that
//! workload's section and omits the cross-PR `history` block, which
//! needs the full run's headline numbers.
//!
//! With `BENCH_ASSERT=1` in the environment the run additionally asserts
//! that the filter kernel's dense and two-constant cases are at least at
//! parity with the scalar sweep, that never-tripping governance stays
//! within noise of the ungoverned path, that incremental maintenance
//! is at least at parity with full re-evaluation, that the WAL's
//! append+fsync tax stays within 1.5x of the in-memory apply, and that
//! demand-driven point queries beat full materialization by ≥2x on
//! selective lookups (≥1x for the warm all-free repeat) — the CI smoke
//! gates; absolute times are never gated — container noise swings
//! them ±10–15% across days.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dynamite_bench_suite::by_name;
use dynamite_core::{synthesize, SynthesisConfig};
use dynamite_datalog::{
    legacy, pool, reorder_default, DurableEvaluator, DurableOptions, Evaluator, Governor,
    IncrementalEvaluator, Program, ResourceLimits, RuleCacheHandle, ServedEvaluator, WorkerPool,
};
use dynamite_instance::hash::FxHashMap;
use dynamite_instance::{to_facts, ColumnIndex, Database, TupleStore, Value};

struct EvalCase {
    name: String,
    facts_in: usize,
    facts_out: usize,
    reps: usize,
    legacy_secs: f64,
    context_secs: f64,
}

impl EvalCase {
    fn speedup(&self) -> f64 {
        self.legacy_secs / self.context_secs.max(1e-12)
    }

    /// Derived facts per second through the context engine.
    fn facts_per_sec(&self) -> f64 {
        self.facts_out as f64 / self.context_secs.max(1e-12)
    }
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (also populates the context's index caches)
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// One golden-program evaluation case: `reps` evaluations of the same
/// program against the same EDB through both engines.
fn eval_case(name: &str, program: &Program, facts: &Database, reps: usize) -> EvalCase {
    let ctx = Evaluator::from_database(facts);
    let facts_out = ctx.eval(program).expect("evaluates").num_facts();
    let context_secs = time_reps(reps, || {
        ctx.eval(program).expect("evaluates");
    });
    let legacy_secs = time_reps(reps, || {
        legacy::evaluate(program, facts).expect("evaluates");
    });
    EvalCase {
        name: name.to_string(),
        facts_in: facts.num_facts(),
        facts_out,
        reps,
        legacy_secs,
        context_secs,
    }
}

struct GovernanceCase {
    reps: usize,
    ungoverned_secs: f64,
    governed_secs: f64,
}

impl GovernanceCase {
    /// Governed-but-never-tripping time over the ungoverned seed path.
    fn overhead(&self) -> f64 {
        self.governed_secs / self.ungoverned_secs.max(1e-12)
    }
}

/// Governance overhead: the same context and program evaluated with and
/// without a (never-tripping) `Governor`, reps interleaved A/B in the
/// same session so machine drift hits both sides alike (BENCHMARKS.md
/// methodology). The governed path's extra work is one atomic poll per
/// 1024 tuples plus per-round and per-unique-insert counter bumps, so
/// the ratio should sit within run-to-run noise.
fn governance_case(program: &Program, facts: &Database, reps: usize) -> GovernanceCase {
    let ctx = Evaluator::from_database(facts);
    let limits = ResourceLimits::none()
        .with_timeout(Duration::from_secs(3600))
        .with_fact_budget(u64::MAX / 2)
        .with_round_cap(u64::MAX / 2);
    ctx.eval(program).expect("evaluates");
    ctx.eval_governed(program, &Governor::new(limits))
        .expect("evaluates");
    let (mut ungoverned, mut governed) = (0.0, 0.0);
    for _ in 0..reps {
        let t = Instant::now();
        ctx.eval(program).expect("evaluates");
        ungoverned += t.elapsed().as_secs_f64();
        let gov = Governor::new(limits);
        let t = Instant::now();
        ctx.eval_governed(program, &gov).expect("evaluates");
        governed += t.elapsed().as_secs_f64();
    }
    GovernanceCase {
        reps,
        ungoverned_secs: ungoverned / reps as f64,
        governed_secs: governed / reps as f64,
    }
}

/// Candidate programs shaped like the synthesizer's samples over the
/// Retina schema: joins over `Neuron`/`Contact` with varying column
/// bindings, projections, and an occasional negated literal.
fn candidate_programs(n: usize) -> Vec<Program> {
    let neuron_cols = ["n", "t", "l", "s"];
    let contact_cols = ["a", "b", "w", "k"];
    let mut out: Vec<Program> = Vec::new();
    fn push(out: &mut Vec<Program>, src: String) {
        out.push(Program::parse(&src).expect("candidate parses"));
    }
    // Single-join candidates: which Contact column joins Neuron's id.
    for (i, jc) in contact_cols.iter().enumerate() {
        let _ = jc;
        let mut c = contact_cols;
        c[i] = "n";
        push(
            &mut out,
            format!(
                "Out(n, t, x) :- Neuron(n, t, _, _), Contact({}, {}, {}, {}), E(x).",
                c[0], c[1], c[2], c[3]
            ),
        );
    }
    // Two-join candidates: vary the second Neuron's join column.
    for nc in neuron_cols {
        for cc in ["b", "w"] {
            push(
                &mut out,
                format!(
                    "Out(n, {nc}2, {cc}) :- Neuron(n, _, l, s), Contact(n, {cc}0, {cc}, _), \
                     Neuron({cc}0, {nc}2, l, s)."
                ),
            );
        }
    }
    // Three-join chains through two contacts.
    for k in 0..4 {
        push(
            &mut out,
            format!(
                "Out(n, q, w) :- Neuron(n, _, _, _), Contact(n, m, w{k}, _), Contact(m, q, w, _)."
            ),
        );
    }
    // Negation candidates.
    for col in ["l", "s"] {
        push(
            &mut out,
            format!("Out(n, {col}) :- Neuron(n, _, l, s), !Contact(n, _, _, \"chemical\")."),
        );
    }
    // Constant-filter variants to fill up to `n` distinct programs.
    let mut layer = 1;
    while out.len() < n {
        push(
            &mut out,
            format!("Out(n, q, w) :- Neuron(n, _, {layer}, _), Contact(n, q, w, _)."),
        );
        layer += 1;
    }
    out.truncate(n);
    out
}

struct RepeatedCase {
    candidates: usize,
    facts_in: usize,
    legacy_secs: f64,
    context_secs: f64,
}

/// The acceptance-criterion workload: the same EDB, ≥50 candidate
/// programs, exactly as the synthesizer loop evaluates them. The legacy
/// path pays full setup per candidate (EDB clone, per-round compiles,
/// per-round index builds); the context path prepares once.
fn repeated_candidates(facts: &Database, programs: &[Program]) -> RepeatedCase {
    // Warm-up both paths once.
    let warm = Evaluator::from_database(facts);
    for p in programs {
        warm.eval(p).expect("candidate evaluates");
        legacy::evaluate(p, facts).expect("candidate evaluates");
    }

    // A CEGIS run evaluates its candidate pool hundreds of times; sweep
    // the pool several times so the measurement is stable.
    const SWEEPS: usize = 10;
    let start = Instant::now();
    let ctx = Evaluator::from_database(facts); // part of the measured cost
    for _ in 0..SWEEPS {
        for p in programs {
            ctx.eval(p).expect("candidate evaluates");
        }
    }
    let context_secs = start.elapsed().as_secs_f64() / SWEEPS as f64;

    let start = Instant::now();
    for _ in 0..SWEEPS {
        for p in programs {
            legacy::evaluate(p, facts).expect("candidate evaluates");
        }
    }
    let legacy_secs = start.elapsed().as_secs_f64() / SWEEPS as f64;

    RepeatedCase {
        candidates: programs.len(),
        facts_in: facts.num_facts(),
        legacy_secs,
        context_secs,
    }
}

struct IndexBuildCase {
    rows: usize,
    key_cols: Vec<usize>,
    reps: usize,
    row_secs: f64,
    columnar_secs: f64,
}

impl IndexBuildCase {
    fn speedup(&self) -> f64 {
        self.row_secs / self.columnar_secs.max(1e-12)
    }
}

/// Index-build microbenchmark: the columnar `ColumnIndex::build` sweep
/// over `TupleStore` column slices vs the former row-oriented layout
/// (`Arc<[Value]>` tuples, one pointer chase per tuple per key column).
fn index_build_case(store: &TupleStore, key_cols: &[usize], reps: usize) -> IndexBuildCase {
    // Materialize the old representation once, outside the timed region.
    let row_tuples: Vec<Arc<[Value]>> = store.iter().map(|r| Arc::from(r.to_vec())).collect();

    let columnar_secs = time_reps(reps, || {
        std::hint::black_box(ColumnIndex::build(store, key_cols));
    });
    let row_secs = time_reps(reps, || {
        // The pre-columnar build: iterate shared tuples, chase each
        // pointer, gather the key per tuple.
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for (i, t) in row_tuples.iter().enumerate() {
            let key: Vec<Value> = key_cols.iter().map(|&c| t[c]).collect();
            map.entry(key).or_default().push(i);
        }
        std::hint::black_box(map);
    });
    IndexBuildCase {
        rows: store.len(),
        key_cols: key_cols.to_vec(),
        reps,
        row_secs,
        columnar_secs,
    }
}

/// A join-shaped relation for the index-build microbenchmark, loaded
/// through the bulk columnar path.
fn index_build_store(rows: usize) -> TupleStore {
    let strings = ["chemical", "electric", "mixed", "unknown"];
    let cols: Vec<Vec<Value>> = vec![
        (0..rows).map(|i| Value::Int((i % 97) as i64)).collect(),
        (0..rows).map(|i| Value::str(strings[i % 4])).collect(),
        (0..rows).map(|i| Value::Id((i % 53) as u64)).collect(),
        (0..rows).map(|i| Value::Int(i as i64)).collect(),
    ];
    TupleStore::from_columns(cols)
}

struct ScalingCase {
    workload: &'static str,
    threads: usize,
    secs: f64,
}

struct JoinOrderingCase {
    candidates: usize,
    facts_in: usize,
    planner_secs: f64,
    body_order_secs: f64,
}

impl JoinOrderingCase {
    fn speedup(&self) -> f64 {
        self.body_order_secs / self.planner_secs.max(1e-12)
    }
}

/// The cost-based-planner acceptance workload: candidate bodies written
/// in adversarial order — the largest relation first, the selective
/// constant literal last — exactly the worst case a machine-generated
/// CEGIS body can hand the engine. Evaluated through two contexts over
/// the same EDB: one with the planner, one pinned to body order.
fn join_ordering() -> JoinOrderingCase {
    let mut db = Database::new();
    db.extend_rows(
        "Big",
        2,
        (0..20_000i64).map(|i| vec![i.into(), (i % 2000).into()]),
    );
    db.extend_rows(
        "Mid",
        2,
        (0..2000i64).map(|i| vec![i.into(), (i % 200).into()]),
    );
    db.extend_rows(
        "Sel",
        2,
        (0..200i64).map(|i| vec![i.into(), (i % 40).into()]),
    );
    let programs: Vec<Program> = [7i64, 13, 29]
        .iter()
        .map(|k| {
            Program::parse(&format!("Out(x) :- Big(x, y), Mid(y, z), Sel(z, {k})."))
                .expect("parses")
        })
        .collect();
    let pool = Arc::new(WorkerPool::new(1));
    let planner =
        Evaluator::with_config(db.clone(), pool.clone(), RuleCacheHandle::default(), true);
    let body_order = Evaluator::with_config(db.clone(), pool, RuleCacheHandle::default(), false);
    // Same answers through both plans, before timing anything.
    for p in &programs {
        assert_eq!(
            planner.eval(p).expect("evaluates"),
            body_order.eval(p).expect("evaluates")
        );
    }
    let planner_secs = time_reps(20, || {
        for p in &programs {
            planner.eval(p).expect("evaluates");
        }
    });
    let body_order_secs = time_reps(20, || {
        for p in &programs {
            body_order.eval(p).expect("evaluates");
        }
    });
    JoinOrderingCase {
        candidates: programs.len(),
        facts_in: db.num_facts(),
        planner_secs,
        body_order_secs,
    }
}

struct BatchFilterCase {
    /// Hit-density regime this case exercises (`sparse`, `dense`, or
    /// `two_const`) — the label the CI smoke assertion keys on.
    regime: &'static str,
    rows: usize,
    consts: usize,
    reps: usize,
    scalar_secs: f64,
    batched_secs: f64,
}

impl BatchFilterCase {
    fn speedup(&self) -> f64 {
        self.scalar_secs / self.batched_secs.max(1e-12)
    }
}

/// The scalar constant-filter pre-scan exactly as PR 3 shipped it —
/// enumerate-filter the first constant column, then `retain` per
/// additional constant — transliterated onto the SoA column streams:
/// each row materializes a `Value` and compares it whole, which is the
/// per-row scalar work the bitmask kernel avoids.
fn scalar_prescan(store: &TupleStore, consts: &[(usize, Value)]) -> Vec<u32> {
    let (c0, v0) = consts[0];
    let mut ids: Vec<u32> = store
        .column(c0)
        .iter()
        .enumerate()
        .filter(|&(_, v)| v == v0)
        .map(|(i, _)| i as u32)
        .collect();
    for &(c, v) in &consts[1..] {
        let col = store.column(c);
        ids.retain(|&i| col.value(i as usize) == v);
    }
    ids
}

/// A filter-shaped relation with *shuffled* column contents. The cyclic
/// `i % k` columns of `index_build_store` would let the branch predictor
/// learn the scalar pre-scan's append branch perfectly, which real
/// (unordered) data never does — the unpredictability is exactly what the
/// batched kernel's branch-free dense path is for.
fn filter_store(rows: usize) -> TupleStore {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let strings = ["chemical", "electric", "mixed", "unknown"];
    TupleStore::from_columns(vec![
        (0..rows).map(|_| Value::Int((rnd() % 97) as i64)).collect(),
        (0..rows)
            .map(|_| Value::str(strings[(rnd() % 4) as usize]))
            .collect(),
        (0..rows).map(|_| Value::Id(rnd() % 53)).collect(),
        (0..rows).map(|i| Value::Int(i as i64)).collect(),
    ])
}

/// Scalar pre-scan (PR 3's code shape, column order, always-conditional)
/// vs the batched adaptive kernel (`TupleStore::filter_const_rows`, since
/// PR 5 a SIMD bitmask sweep over the SoA tag/payload streams in the
/// dense regime) over the same store and constants.
fn batch_filter_case(
    regime: &'static str,
    store: &TupleStore,
    consts: &[(usize, Value)],
    reps: usize,
) -> BatchFilterCase {
    let expect = scalar_prescan(store, consts);
    assert_eq!(
        store.filter_const_rows(consts, 0, usize::MAX),
        expect,
        "kernel disagrees with the scalar sweep"
    );
    let scalar_secs = time_reps(reps, || {
        std::hint::black_box(scalar_prescan(store, consts));
    });
    let batched_secs = time_reps(reps, || {
        std::hint::black_box(store.filter_const_rows(consts, 0, usize::MAX));
    });
    BatchFilterCase {
        regime,
        rows: store.len(),
        consts: consts.len(),
        reps,
        scalar_secs,
        batched_secs,
    }
}

struct UpdateStreamCase {
    edges: usize,
    output_facts: usize,
    batches: usize,
    batch_inserts: usize,
    batch_deletes: usize,
    /// Seconds per batch through `IncrementalEvaluator::apply_delta`.
    maintain_secs: f64,
    /// Seconds per batch through a from-scratch `Evaluator` build + eval
    /// of the mutated EDB (what a non-incremental consumer would pay).
    full_secs: f64,
}

impl UpdateStreamCase {
    fn speedup(&self) -> f64 {
        self.full_secs / self.maintain_secs.max(1e-12)
    }

    /// Maintained output facts per second of maintenance time.
    fn maintained_facts_per_sec(&self) -> f64 {
        self.output_facts as f64 / self.maintain_secs.max(1e-12)
    }
}

/// Applies one batch to the shadow database the way the maintainer
/// documents its semantics: deletions first, then insertions.
fn apply_shadow(shadow: &mut Database, ins: &Database, dels: &Database) {
    for (name, rel) in dels.iter() {
        if shadow.relation(name).is_none() {
            continue;
        }
        let rows: Vec<Vec<Value>> = rel.iter().map(|r| r.iter().collect()).collect();
        shadow.relation_mut(name, rel.arity()).remove_rows(&rows);
    }
    shadow.merge(ins);
}

/// The incremental-maintenance acceptance workload: transitive closure
/// over ~1e5 `Edge` facts (3333 disjoint chains of length 30), fed a
/// stream of small mixed batches — 32 skip-edge insertions within random
/// chains plus 32 deletions of random live edges, well under 1% of the
/// EDB per batch. Each iteration times `apply_delta` against a full
/// from-scratch re-evaluation of the same mutated EDB (interleaved A/B,
/// so machine drift hits both sides alike) and asserts the maintained
/// output is set-identical to the scratch result before timing the next
/// batch.
fn update_stream_case() -> UpdateStreamCase {
    const CHAINS: u64 = 3333;
    const LEN: u64 = 30;
    const BATCHES: usize = 8;
    const INS: usize = 32;
    const DELS: usize = 32;
    let program = Program::parse(
        "Path(x, y) :- Edge(x, y).
         Path(x, z) :- Path(x, y), Edge(y, z).",
    )
    .expect("parses");
    let mut db = Database::new();
    db.extend_rows(
        "Edge",
        2,
        (0..CHAINS as i64).flat_map(|c| {
            let base = c * (LEN as i64 + 1);
            (0..LEN as i64).map(move |i| vec![(base + i).into(), (base + i + 1).into()])
        }),
    );
    let edges = db.num_facts();
    let mut inc = IncrementalEvaluator::new(program.clone(), db.clone()).expect("maintainer");
    let mut shadow = db;

    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let (mut maintain, mut full) = (0.0f64, 0.0f64);
    let mut output_facts = 0usize;
    for batch in 0..BATCHES {
        let mut ins = Database::new();
        for _ in 0..INS {
            // A forward skip edge inside one chain: bounded closure
            // growth, still exercises the recursive delta rounds.
            let base = (rnd() % CHAINS * (LEN + 1)) as i64;
            let i = rnd() % (LEN - 1);
            let j = i + 2 + rnd() % (LEN - i - 1);
            ins.insert(
                "Edge",
                vec![(base + i as i64).into(), (base + j as i64).into()],
            );
        }
        let live: Vec<Vec<Value>> = shadow
            .relation("Edge")
            .map(|r| r.iter().map(|row| row.iter().collect()).collect())
            .unwrap_or_default();
        let mut dels = Database::new();
        for _ in 0..DELS {
            dels.insert("Edge", live[(rnd() as usize) % live.len()].clone());
        }

        let t = Instant::now();
        inc.apply_delta(&ins, &dels).expect("maintains");
        maintain += t.elapsed().as_secs_f64();

        apply_shadow(&mut shadow, &ins, &dels);
        let t = Instant::now();
        let scratch = Evaluator::eval_once(&program, &shadow).expect("evaluates");
        full += t.elapsed().as_secs_f64();

        let maintained = inc.output();
        assert_eq!(
            maintained, scratch,
            "maintained output diverged from scratch at batch {batch}"
        );
        output_facts = maintained.num_facts();
    }
    UpdateStreamCase {
        edges,
        output_facts,
        batches: BATCHES,
        batch_inserts: INS,
        batch_deletes: DELS,
        maintain_secs: maintain / BATCHES as f64,
        full_secs: full / BATCHES as f64,
    }
}

struct PointQueryCase {
    edges: usize,
    /// Facts in the fully materialized closure (what the full path derives
    /// per query; the magic path derives only the demanded slice).
    closure_facts: usize,
    /// Distinct selective queries per timed sweep.
    queries: usize,
    /// Seconds per selective query via the magic-sets rewrite (one-shot
    /// `Evaluator::query`, no cache — every query runs its own fixpoint).
    magic_secs: f64,
    /// Seconds per selective query via full materialization + filter
    /// (what a consumer without the query layer pays).
    full_secs: f64,
    /// Seconds per selective query against a warm `ServedEvaluator`
    /// (subsumption cache hit, no fixpoint at all).
    cached_secs: f64,
    /// Seconds per all-free query against the warm server (cache hit:
    /// one relation clone) — the degenerate everything-bound-free case.
    allfree_cached_secs: f64,
    /// Seconds per full evaluation (the all-free baseline).
    allfree_full_secs: f64,
}

impl PointQueryCase {
    /// Magic-sets fixpoint over full materialization on selective lookups.
    fn magic_speedup(&self) -> f64 {
        self.full_secs / self.magic_secs.max(1e-12)
    }

    /// Warm-cache answer over full materialization on selective lookups.
    fn cached_speedup(&self) -> f64 {
        self.full_secs / self.cached_secs.max(1e-12)
    }

    /// Warm-cache all-free answer over a full evaluation.
    fn allfree_speedup(&self) -> f64 {
        self.allfree_full_secs / self.allfree_cached_secs.max(1e-12)
    }
}

/// The demand-driven-query acceptance workload: transitive closure over
/// disjoint chains (the same shape as `update_stream`, scaled so full
/// materialization derives ~93k facts), probed with selective
/// `Path(src, ?)` point queries whose true answer is one chain's ≤30
/// suffix facts. Three serving strategies over the same EDB, answers
/// asserted identical before timing: the magic-sets rewrite (fixpoint
/// restricted to the demanded chain), full materialization + filter, and
/// a warm subsumption cache. The all-free pattern is timed separately —
/// it degenerates to full evaluation, so only the warm-cache repeat is
/// expected to beat the baseline there.
fn point_query_case() -> PointQueryCase {
    const CHAINS: i64 = 200;
    const LEN: i64 = 30;
    const QUERIES: usize = 10;
    let program = Program::parse(
        "Path(x, y) :- Edge(x, y).
         Path(x, z) :- Path(x, y), Edge(y, z).",
    )
    .expect("parses");
    let mut db = Database::new();
    db.extend_rows(
        "Edge",
        2,
        (0..CHAINS).flat_map(|c| {
            let base = c * (LEN + 1);
            (0..LEN).map(move |i| vec![(base + i).into(), (base + i + 1).into()])
        }),
    );
    let edges = db.num_facts();
    let ctx = Evaluator::from_database(&db);
    let full_out = ctx.eval(&program).expect("evaluates");
    let closure_facts = full_out.num_facts();

    // Chain heads, spread across the EDB: maximally selective (each
    // reaches exactly its own chain's LEN suffixes).
    let sources: Vec<Value> = (0..QUERIES as i64)
        .map(|q| Value::Int((q * 37 % CHAINS) * (LEN + 1)))
        .collect();
    let filter_full = |src: Value| -> Vec<Vec<Value>> {
        full_out
            .relation("Path")
            .expect("closure")
            .iter()
            .map(|r| r.to_vec())
            .filter(|row| row[0] == src)
            .collect()
    };
    // Same answers through every strategy, before timing anything.
    let served = ServedEvaluator::new(program.clone(), db.clone()).expect("server");
    for &src in &sources {
        let want = filter_full(src);
        assert_eq!(want.len(), LEN as usize, "selective query hits one chain");
        let bindings = [Some(src), None];
        let magic = ctx.query(&program, "Path", &bindings).expect("queries");
        assert_eq!(magic.len(), want.len(), "magic answer diverged");
        let cached = served.query("Path", &bindings).expect("queries");
        assert_eq!(cached.len(), want.len(), "served answer diverged");
    }

    // Magic path: one-shot queries, a fresh demand-restricted fixpoint
    // each time (the cacheless lower bound of the serving layer).
    let magic_secs = time_reps(3, || {
        for &src in &sources {
            std::hint::black_box(
                ctx.query(&program, "Path", &[Some(src), None])
                    .expect("queries"),
            );
        }
    }) / QUERIES as f64;

    // Full path: materialize everything, then filter — per query.
    let full_secs = time_reps(3, || {
        for &src in &sources {
            let out = ctx.eval(&program).expect("evaluates");
            std::hint::black_box(
                out.relation("Path")
                    .expect("closure")
                    .iter()
                    .filter(|r| r.at(0) == src)
                    .count(),
            );
        }
    }) / QUERIES as f64;

    // Warm cache: the correctness sweep above populated every entry.
    let cached_secs = time_reps(10, || {
        for &src in &sources {
            std::hint::black_box(served.query("Path", &[Some(src), None]).expect("queries"));
        }
    }) / QUERIES as f64;

    // All-free: full evaluation is the floor; the warm server answers
    // repeats with a relation clone.
    served.query("Path", &[None, None]).expect("queries");
    let allfree_cached_secs = time_reps(5, || {
        std::hint::black_box(served.query("Path", &[None, None]).expect("queries"));
    });
    let allfree_full_secs = time_reps(5, || {
        std::hint::black_box(ctx.eval(&program).expect("evaluates"));
    });

    PointQueryCase {
        edges,
        closure_facts,
        queries: QUERIES,
        magic_secs,
        full_secs,
        cached_secs,
        allfree_cached_secs,
        allfree_full_secs,
    }
}

struct DurabilityCase {
    edges: usize,
    batches: usize,
    /// Seconds per batch through the plain in-memory maintainer.
    memory_secs: f64,
    /// Seconds per batch through `DurableEvaluator::apply_delta` (WAL
    /// frame encode + append + fsync, then the same in-memory apply).
    durable_secs: f64,
    /// One forced checkpoint (full-state serialize + fsync + rename +
    /// read-back verification + WAL rotation) at end of stream.
    checkpoint_secs: f64,
    /// Cold `open()`: newest checkpoint load + WAL suffix replay.
    recover_secs: f64,
    /// Integrity scrub of the closed directory (CRC + fail-closed
    /// decode of every checkpoint and WAL frame, nothing applied).
    scrub_secs: f64,
    /// One drift audit on the recovered evaluator (a full from-scratch
    /// re-evaluation plus a set-wise diff against the overlay).
    audit_secs: f64,
    wal_bytes: u64,
}

impl DurabilityCase {
    /// Durable apply over in-memory apply; the WAL's append+fsync tax.
    fn overhead(&self) -> f64 {
        self.durable_secs / self.memory_secs.max(1e-12)
    }
}

/// The durability acceptance workload: the `update_stream` EDB and batch
/// shape, applied in lockstep to a plain `IncrementalEvaluator` and a
/// `DurableEvaluator` logging every batch to a fsync'd WAL (compaction
/// disabled so the stream measures the raw append tax, not an amortized
/// checkpoint). Interleaved A/B per batch, same-run relative numbers
/// only. Afterwards one forced checkpoint and one cold recovery are
/// timed, and the recovered output is asserted bit-identical (row order
/// included) to the uninterrupted run's.
fn durability_case() -> DurabilityCase {
    const CHAINS: u64 = 3333;
    const LEN: u64 = 30;
    const BATCHES: usize = 8;
    const INS: usize = 32;
    const DELS: usize = 32;
    let program = Program::parse(
        "Path(x, y) :- Edge(x, y).
         Path(x, z) :- Path(x, y), Edge(y, z).",
    )
    .expect("parses");
    let mut db = Database::new();
    db.extend_rows(
        "Edge",
        2,
        (0..CHAINS as i64).flat_map(|c| {
            let base = c * (LEN as i64 + 1);
            (0..LEN as i64).map(move |i| vec![(base + i).into(), (base + i + 1).into()])
        }),
    );
    let edges = db.num_facts();
    let dir =
        std::env::temp_dir().join(format!("dynamite-bench-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DurableOptions {
        compact_min_wal_bytes: u64::MAX,
        ..DurableOptions::default()
    };
    let mut mem = IncrementalEvaluator::new(program.clone(), db.clone()).expect("maintainer");
    let mut dur = DurableEvaluator::create_with_config(
        &dir,
        program,
        db,
        opts,
        pool::with_threads(None),
        reorder_default(),
    )
    .expect("durable maintainer");

    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let (mut memory, mut durable) = (0.0f64, 0.0f64);
    for _ in 0..BATCHES {
        let mut ins = Database::new();
        for _ in 0..INS {
            let base = (rnd() % CHAINS * (LEN + 1)) as i64;
            let i = rnd() % (LEN - 1);
            let j = i + 2 + rnd() % (LEN - i - 1);
            ins.insert(
                "Edge",
                vec![(base + i as i64).into(), (base + j as i64).into()],
            );
        }
        // Delete from the chain interiors so both sides see identical
        // batches without tracking live rows.
        let mut dels = Database::new();
        for _ in 0..DELS {
            let base = (rnd() % CHAINS * (LEN + 1)) as i64;
            let i = (rnd() % LEN) as i64;
            dels.insert("Edge", vec![(base + i).into(), (base + i + 1).into()]);
        }

        let t = Instant::now();
        mem.apply_delta(&ins, &dels).expect("maintains");
        memory += t.elapsed().as_secs_f64();

        let t = Instant::now();
        dur.apply_delta(&ins, &dels).expect("maintains durably");
        durable += t.elapsed().as_secs_f64();
    }
    let wal_bytes = dur.wal_bytes();

    let t = Instant::now();
    dur.checkpoint().expect("checkpoints");
    let checkpoint_secs = t.elapsed().as_secs_f64();

    let live = dur.output();
    drop(dur);

    let t = Instant::now();
    let scrub = DurableEvaluator::scrub(&dir).expect("scrubs");
    let scrub_secs = t.elapsed().as_secs_f64();
    assert!(scrub.is_clean(), "scrub found damage in a clean run");

    let t = Instant::now();
    let mut back =
        DurableEvaluator::open_with_config(&dir, opts, pool::with_threads(None), reorder_default())
            .expect("recovers");
    let recover_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    back.audit().expect("audits clean");
    let audit_secs = t.elapsed().as_secs_f64();
    let rows = |d: &Database| -> Vec<(String, Vec<Vec<Value>>)> {
        d.iter()
            .map(|(n, r)| {
                (
                    n.to_string(),
                    r.iter().map(|x| x.iter().collect()).collect(),
                )
            })
            .collect()
    };
    assert_eq!(rows(&back.output()), rows(&live), "recovery diverged");
    drop(back);
    let _ = std::fs::remove_dir_all(&dir);

    DurabilityCase {
        edges,
        batches: BATCHES,
        memory_secs: memory / BATCHES as f64,
        durable_secs: durable / BATCHES as f64,
        checkpoint_secs,
        recover_secs,
        scrub_secs,
        audit_secs,
        wal_bytes,
    }
}

/// Thread-scaling sweep over explicit pools: the recursive-closure
/// fixpoint (partitioned outer scans) and the repeated-candidate sweep
/// (whole-variant fan-out), at 1/2/4/8 workers. `threads = 1` is the
/// sequential fallback and doubles as its regression guard.
///
/// On a single-hardware-thread machine the 2/4/8 rows can only measure
/// fan-out overhead (every worker timeshares one core), so the sweep
/// collapses to the `threads = 1` row and says so in the JSON `note`.
fn parallel_scaling(
    closure: &Program,
    edges: &Database,
    facts: &Database,
    programs: &[Program],
    thread_counts: &[usize],
) -> Vec<ScalingCase> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        let pool = Arc::new(WorkerPool::new(threads));
        let ctx = Evaluator::with_pool(edges.clone(), pool.clone());
        let secs = time_reps(5, || {
            ctx.eval(closure).expect("evaluates");
        });
        out.push(ScalingCase {
            workload: "transitive_closure_400",
            threads,
            secs,
        });
        let ctx = Evaluator::with_pool(facts.clone(), pool);
        let secs = time_reps(5, || {
            for p in programs {
                ctx.eval(p).expect("candidate evaluates");
            }
        });
        out.push(ScalingCase {
            workload: "repeated_candidates_sweep",
            threads,
            secs,
        });
        eprintln!("parallel_scaling threads={threads} done");
    }
    out
}

struct SynthCase {
    name: String,
    secs: f64,
    iterations: usize,
}

fn synth_case(name: &str) -> SynthCase {
    let b = by_name(name).expect("benchmark exists");
    let ex = b.example();
    let start = Instant::now();
    let result = synthesize(
        b.source(),
        b.target(),
        std::slice::from_ref(&ex),
        &SynthesisConfig::default(),
    )
    .expect("synthesis succeeds");
    SynthCase {
        name: format!("synthesis/{name}"),
        secs: start.elapsed().as_secs_f64(),
        iterations: result.stats.total_iterations(),
    }
}

/// Workload names `--case` accepts, in run order.
const CASE_NAMES: &[&str] = &[
    "golden",
    "transitive_closure",
    "governance",
    "repeated_candidates",
    "join_ordering",
    "batch_filter",
    "update_stream",
    "point_query",
    "durability",
    "parallel_scaling",
    "index_build",
    "synthesis",
];

fn main() {
    let mut out_path = String::from("BENCH_eval.json");
    let mut case_filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--case" {
            let Some(name) = args.next() else {
                eprintln!(
                    "--case needs a workload name; available cases: {}",
                    CASE_NAMES.join(", ")
                );
                std::process::exit(2);
            };
            if !CASE_NAMES.contains(&name.as_str()) {
                eprintln!(
                    "unknown case `{name}`; available cases: {}",
                    CASE_NAMES.join(", ")
                );
                std::process::exit(2);
            }
            case_filter = Some(name);
        } else {
            out_path = arg;
        }
    }
    let run = |name: &str| case_filter.as_deref().is_none_or(|f| f == name);

    // --- datalog/golden: join-heavy golden programs on generated data.
    let mut eval_cases = Vec::new();
    if run("golden") {
        for name in ["Bike-3", "Soccer-1"] {
            let b = by_name(name).expect("benchmark exists");
            let facts = to_facts(&b.generate_source(4, 3));
            eval_cases.push(eval_case(&format!("golden/{name}"), b.golden(), &facts, 20));
            eprintln!("done golden/{name}");
        }
    }

    // --- recursive closure (exercises semi-naive delta indexes).
    let closure = Program::parse(
        "Path(x, y) :- Edge(x, y).
         Path(x, z) :- Path(x, y), Edge(y, z).",
    )
    .expect("parses");
    let mut edges = Database::new();
    edges.extend_rows(
        "Edge",
        2,
        (0..400i64).flat_map(|i| {
            let chain = vec![i.into(), (i + 1).into()];
            let skip = (i % 7 == 0).then(|| vec![i.into(), ((i + 13) % 400).into()]);
            std::iter::once(chain).chain(skip)
        }),
    );
    if run("transitive_closure") {
        eval_cases.push(eval_case(
            "datalog/transitive_closure_400",
            &closure,
            &edges,
            5,
        ));
        eprintln!("done transitive closure");
    }

    // --- governance overhead: the same closure workload governed by a
    // never-tripping Governor vs the plain path, interleaved.
    let governance = run("governance").then(|| governance_case(&closure, &edges, 10));
    if let Some(g) = &governance {
        eprintln!(
            "governance overhead: {:.2}x ({:.6}s governed vs {:.6}s ungoverned per eval)",
            g.overhead(),
            g.governed_secs,
            g.ungoverned_secs
        );
    }

    // --- repeated candidates: one EDB, many programs (CEGIS shape).
    // The Retina EDB and candidate pool also feed the scaling sweep.
    let mut facts = Database::new();
    let mut programs = Vec::new();
    if run("repeated_candidates") || run("parallel_scaling") {
        let retina = by_name("Retina-2").expect("benchmark exists");
        facts = to_facts(&retina.generate_source(8, 7));
        // The single-join candidates also scan a tiny unary relation.
        for v in 0..5i64 {
            facts.insert("E", vec![v.into()]);
        }
        programs = candidate_programs(60);
    }
    let repeated = run("repeated_candidates").then(|| repeated_candidates(&facts, &programs));
    if let Some(r) = &repeated {
        eprintln!(
            "repeated candidates: {}x speedup ({} candidates, {} facts)",
            r.legacy_secs / r.context_secs.max(1e-12),
            r.candidates,
            r.facts_in
        );
    }

    // --- join ordering: adversarial bodies, planner vs body order.
    let ordering = run("join_ordering").then(join_ordering);
    if let Some(o) = &ordering {
        eprintln!(
            "join_ordering: {:.2}x planner speedup ({:.6}s vs {:.6}s body-order)",
            o.speedup(),
            o.planner_secs,
            o.body_order_secs
        );
    }

    // --- batch filter: scalar pre-scan vs the batched adaptive kernel,
    // in both regimes (sparse ~1% hits, dense ~25% hits) plus the
    // multi-constant staged path.
    let batch_cases: Vec<BatchFilterCase> = if run("batch_filter") {
        [(10_000usize, 400usize), (100_000, 60)]
            .into_iter()
            .flat_map(|(rows, reps)| {
                let store = filter_store(rows);
                [
                    batch_filter_case("sparse", &store, &[(0, Value::Int(7))], reps),
                    batch_filter_case("dense", &store, &[(1, Value::str("electric"))], reps),
                    batch_filter_case(
                        "two_const",
                        &store,
                        &[(1, Value::str("electric")), (0, Value::Int(7))],
                        reps,
                    ),
                ]
            })
            .collect()
    } else {
        Vec::new()
    };
    for c in &batch_cases {
        eprintln!(
            "batch_filter {} rows={} consts={}: {:.2}x batched speedup",
            c.regime,
            c.rows,
            c.consts,
            c.speedup()
        );
    }
    // --- update stream: incremental maintenance vs full re-evaluation.
    let update = run("update_stream").then(update_stream_case);
    if let Some(u) = &update {
        eprintln!(
            "update_stream: {:.1}x maintained speedup ({:.6}s maintain vs {:.6}s full \
             per batch, {:.0} maintained facts/sec)",
            u.speedup(),
            u.maintain_secs,
            u.full_secs,
            u.maintained_facts_per_sec()
        );
    }

    // --- point queries: demand-driven serving (magic sets + cache) vs
    // full materialization.
    let point = run("point_query").then(point_query_case);
    if let Some(p) = &point {
        eprintln!(
            "point_query: {:.1}x magic speedup, {:.1}x cached speedup ({:.6}s magic vs \
             {:.6}s full per query), all-free cached {:.2}x",
            p.magic_speedup(),
            p.cached_speedup(),
            p.magic_secs,
            p.full_secs,
            p.allfree_speedup()
        );
    }

    // --- durability: WAL-logged maintenance vs in-memory, plus
    // checkpoint and cold-recovery latencies.
    let durability = run("durability").then(durability_case);
    if let Some(d) = &durability {
        eprintln!(
            "durability: {:.2}x WAL overhead ({:.6}s durable vs {:.6}s in-memory per batch), \
             checkpoint {:.4}s, recovery {:.4}s, scrub {:.4}s, audit {:.4}s, {} WAL bytes",
            d.overhead(),
            d.durable_secs,
            d.memory_secs,
            d.checkpoint_secs,
            d.recover_secs,
            d.scrub_secs,
            d.audit_secs,
            d.wal_bytes
        );
    }

    // CI smoke assertions (`BENCH_ASSERT=1`): the kernel must never lose
    // to the scalar sweep in the regimes it is built for (dense and
    // two-constant probes), and incremental maintenance must never lose
    // to full re-evaluation on small batches. Absolute times are NOT
    // gated — container noise is ±10–15% across days — only the same-run
    // relative order.
    if std::env::var("BENCH_ASSERT").is_ok_and(|v| v.trim() == "1") {
        for c in batch_cases.iter().filter(|c| c.regime != "sparse") {
            assert!(
                c.speedup() >= 1.0,
                "batch_filter regression: {} rows={} consts={} speedup {:.2} < 1.0 \
                 (kernel slower than the scalar sweep)",
                c.regime,
                c.rows,
                c.consts,
                c.speedup()
            );
        }
        if !batch_cases.is_empty() {
            eprintln!("BENCH_ASSERT: batch_filter dense/two_const >= 1.0x ok");
        }
        // Governance must be within noise of the seed path when no limit
        // trips; 1.25x is the noise band (±10–15%) plus headroom. The
        // two sides are interleaved in one session, so a systematic gap
        // here is real per-tuple overhead, not machine drift.
        if let Some(g) = &governance {
            assert!(
                g.overhead() <= 1.25,
                "governance overhead regression: governed {:.6}s vs ungoverned {:.6}s per eval \
                 ({:.2}x > 1.25x)",
                g.governed_secs,
                g.ungoverned_secs,
                g.overhead()
            );
            eprintln!(
                "BENCH_ASSERT: governance overhead {:.2}x <= 1.25x ok",
                g.overhead()
            );
        }
        // Maintenance beats full re-eval by a wide margin on this
        // workload (tens of times in local runs), but the gate is a
        // conservative parity check so scheduler noise cannot flake CI.
        if let Some(u) = &update {
            assert!(
                u.speedup() >= 1.0,
                "update_stream regression: maintenance {:.6}s/batch slower than full \
                 re-evaluation {:.6}s/batch ({:.2}x < 1.0x)",
                u.maintain_secs,
                u.full_secs,
                u.speedup()
            );
            eprintln!(
                "BENCH_ASSERT: update_stream speedup {:.1}x >= 1.0x ok",
                u.speedup()
            );
        }
        // Selective point queries are the workload the magic rewrite
        // exists for: the demanded slice is ~0.3% of the closure, so the
        // local ratio is enormous; 2.0x is a conservative floor that
        // container noise cannot flake. All-free degenerates to a full
        // evaluation, so only the warm-cache repeat is gated — at bare
        // parity, since its answer is one relation clone.
        if let Some(p) = &point {
            assert!(
                p.magic_speedup() >= 2.0,
                "point_query regression: magic {:.6}s/query vs full materialization \
                 {:.6}s/query ({:.2}x < 2.0x on selective lookups)",
                p.magic_secs,
                p.full_secs,
                p.magic_speedup()
            );
            assert!(
                p.allfree_speedup() >= 1.0,
                "point_query regression: warm all-free answer {:.6}s vs full evaluation \
                 {:.6}s ({:.2}x < 1.0x)",
                p.allfree_cached_secs,
                p.allfree_full_secs,
                p.allfree_speedup()
            );
            eprintln!(
                "BENCH_ASSERT: point_query magic {:.1}x >= 2.0x, all-free cached {:.2}x >= 1.0x ok",
                p.magic_speedup(),
                p.allfree_speedup()
            );
        }
        // The WAL tax (frame encode + append + fsync) rides on top of the
        // same in-memory apply, interleaved in one session; 1.5x is the
        // acceptance ceiling from the durability issue, with the fsync
        // cost dominated by the multi-millisecond maintenance batches.
        if let Some(d) = &durability {
            assert!(
                d.overhead() <= 1.5,
                "durability regression: durable apply {:.6}s/batch vs in-memory {:.6}s/batch \
                 ({:.2}x > 1.5x WAL overhead)",
                d.durable_secs,
                d.memory_secs,
                d.overhead()
            );
            eprintln!(
                "BENCH_ASSERT: durability WAL overhead {:.2}x <= 1.5x ok",
                d.overhead()
            );
        }
    }

    // --- parallel scaling: pool fan-out at 1/2/4/8 workers (collapsed
    // to the sequential row when the hardware cannot scale anyway).
    let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let thread_counts: &[usize] = if hardware_threads == 1 {
        &[1]
    } else {
        &[1, 2, 4, 8]
    };
    let scaling = if run("parallel_scaling") {
        if hardware_threads == 1 {
            eprintln!("parallel_scaling: single hardware thread, recording threads=1 only");
        }
        parallel_scaling(&closure, &edges, &facts, &programs, thread_counts)
    } else {
        Vec::new()
    };

    // --- index builds: columnar sweep vs the former row-oriented chase.
    let index_cases: Vec<IndexBuildCase> = if run("index_build") {
        let store = index_build_store(50_000);
        [vec![0usize], vec![0, 2], vec![1, 2, 3]]
            .into_iter()
            .map(|cols| {
                let c = index_build_case(&store, &cols, 40);
                eprintln!(
                    "index_build cols {:?}: {:.2}x columnar speedup",
                    c.key_cols,
                    c.speedup()
                );
                c
            })
            .collect()
    } else {
        Vec::new()
    };

    // --- synthesis end-to-end (the consumer of all of the above).
    let synth_cases: Vec<SynthCase> = if run("synthesis") {
        ["Tencent-1", "Bike-3", "MLB-1"]
            .iter()
            .map(|n| {
                let c = synth_case(n);
                eprintln!("done {}", c.name);
                c
            })
            .collect()
    } else {
        Vec::new()
    };

    // --- hand-rolled JSON (the workspace is dependency-free offline).
    // Each section is built as its own string and joined at the end so a
    // `--case`-filtered run still writes a valid document containing
    // only the sections that actually ran.
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    let mut sections: Vec<String> = vec![format!("  \"unix_time\": {epoch}")];
    if !eval_cases.is_empty() {
        let mut s = String::from("  \"cases\": [\n");
        for (i, c) in eval_cases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"facts_in\": {}, \"facts_out\": {}, \"reps\": {}, \
                 \"legacy_secs_per_eval\": {:.6}, \"context_secs_per_eval\": {:.6}, \
                 \"speedup\": {:.2}, \"facts_per_sec\": {:.0}}}{}\n",
                c.name,
                c.facts_in,
                c.facts_out,
                c.reps,
                c.legacy_secs,
                c.context_secs,
                c.speedup(),
                c.facts_per_sec(),
                if i + 1 < eval_cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]");
        sections.push(s);
    }
    if let Some(r) = &repeated {
        sections.push(format!(
            "  \"repeated_candidates\": {{\"candidates\": {}, \"facts_in\": {}, \
             \"legacy_secs\": {:.6}, \"context_secs\": {:.6}, \"speedup\": {:.2}}}",
            r.candidates,
            r.facts_in,
            r.legacy_secs,
            r.context_secs,
            r.legacy_secs / r.context_secs.max(1e-12),
        ));
    }
    if !index_cases.is_empty() {
        let mut s = String::from("  \"index_build\": [\n");
        for (i, c) in index_cases.iter().enumerate() {
            let cols: Vec<String> = c.key_cols.iter().map(usize::to_string).collect();
            s.push_str(&format!(
                "    {{\"rows\": {}, \"key_cols\": [{}], \"reps\": {}, \
                 \"row_secs_per_build\": {:.6}, \"columnar_secs_per_build\": {:.6}, \
                 \"speedup\": {:.2}}}{}\n",
                c.rows,
                cols.join(", "),
                c.reps,
                c.row_secs,
                c.columnar_secs,
                c.speedup(),
                if i + 1 < index_cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]");
        sections.push(s);
    }
    if let Some(o) = &ordering {
        sections.push(format!(
            "  \"join_ordering\": {{\"candidates\": {}, \"facts_in\": {}, \
             \"planner_secs\": {:.6}, \"body_order_secs\": {:.6}, \"speedup\": {:.2}}}",
            o.candidates,
            o.facts_in,
            o.planner_secs,
            o.body_order_secs,
            o.speedup(),
        ));
    }
    if let Some(g) = &governance {
        sections.push(format!(
            "  \"governance\": {{\"reps\": {}, \"ungoverned_secs_per_eval\": {:.6}, \
             \"governed_secs_per_eval\": {:.6}, \"overhead\": {:.3}}}",
            g.reps,
            g.ungoverned_secs,
            g.governed_secs,
            g.overhead(),
        ));
    }
    if !batch_cases.is_empty() {
        let mut s = String::from("  \"batch_filter\": [\n");
        for (i, c) in batch_cases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"regime\": \"{}\", \"rows\": {}, \"consts\": {}, \"reps\": {}, \
                 \"scalar_secs_per_scan\": {:.9}, \"batched_secs_per_scan\": {:.9}, \
                 \"speedup\": {:.2}}}{}\n",
                c.regime,
                c.rows,
                c.consts,
                c.reps,
                c.scalar_secs,
                c.batched_secs,
                c.speedup(),
                if i + 1 < batch_cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]");
        sections.push(s);
    }
    if let Some(u) = &update {
        sections.push(format!(
            "  \"update_stream\": {{\"edges\": {}, \"output_facts\": {}, \"batches\": {}, \
             \"batch_inserts\": {}, \"batch_deletes\": {}, \
             \"maintain_secs_per_batch\": {:.6}, \"full_secs_per_batch\": {:.6}, \
             \"speedup\": {:.2}, \"maintained_facts_per_sec\": {:.0}}}",
            u.edges,
            u.output_facts,
            u.batches,
            u.batch_inserts,
            u.batch_deletes,
            u.maintain_secs,
            u.full_secs,
            u.speedup(),
            u.maintained_facts_per_sec(),
        ));
    }
    if let Some(p) = &point {
        sections.push(format!(
            "  \"point_query\": {{\"edges\": {}, \"closure_facts\": {}, \"queries\": {}, \
             \"magic_secs_per_query\": {:.6}, \"full_secs_per_query\": {:.6}, \
             \"cached_secs_per_query\": {:.9}, \"magic_speedup\": {:.2}, \
             \"cached_speedup\": {:.2}, \"allfree_cached_secs\": {:.6}, \
             \"allfree_full_secs\": {:.6}, \"allfree_speedup\": {:.2}}}",
            p.edges,
            p.closure_facts,
            p.queries,
            p.magic_secs,
            p.full_secs,
            p.cached_secs,
            p.magic_speedup(),
            p.cached_speedup(),
            p.allfree_cached_secs,
            p.allfree_full_secs,
            p.allfree_speedup(),
        ));
    }
    if let Some(d) = &durability {
        sections.push(format!(
            "  \"durability\": {{\"edges\": {}, \"batches\": {}, \
             \"memory_secs_per_batch\": {:.6}, \"durable_secs_per_batch\": {:.6}, \
             \"wal_overhead\": {:.3}, \"checkpoint_secs\": {:.6}, \
             \"recover_secs\": {:.6}, \"scrub_secs\": {:.6}, \
             \"audit_secs\": {:.6}, \"wal_bytes\": {}}}",
            d.edges,
            d.batches,
            d.memory_secs,
            d.durable_secs,
            d.overhead(),
            d.checkpoint_secs,
            d.recover_secs,
            d.scrub_secs,
            d.audit_secs,
            d.wal_bytes,
        ));
    }
    if !scaling.is_empty() {
        let mut s = format!(
            "  \"parallel_scaling\": {{\"hardware_threads\": {hardware_threads},{} \"cases\": [\n",
            if hardware_threads == 1 {
                " \"note\": \"single hardware thread: threads>1 rows would measure fan-out \
                 overhead only, sweep collapsed to the sequential row\","
            } else {
                ""
            }
        );
        for (i, c) in scaling.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"workload\": \"{}\", \"threads\": {}, \"secs\": {:.6}}}{}\n",
                c.workload,
                c.threads,
                c.secs,
                if i + 1 < scaling.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]}");
        sections.push(s);
    }
    // Perf trajectory: earlier PRs' headline numbers kept verbatim (so a
    // fresh run still records where the engine came from), plus this PR's
    // measured headline. Needs the full run's numbers, so filtered runs
    // skip it.
    if case_filter.is_none() {
        let repeated = repeated.as_ref().expect("full run");
        let ordering = ordering.as_ref().expect("full run");
        let governance = governance.as_ref().expect("full run");
        let update = update.as_ref().expect("full run");
        let durability = durability.as_ref().expect("full run");
        let mut s = String::from(
            "  \"history\": [\n    {\"pr\": 1, \"storage\": \"row (Arc<[Value]>)\", \
             \"repeated_candidates_context_secs\": 0.003963, \
             \"repeated_candidates_speedup\": 3.90},\n    {\"pr\": 2, \
             \"storage\": \"columnar (TupleStore)\", \
             \"repeated_candidates_context_secs\": 0.002964, \
             \"repeated_candidates_speedup\": 3.91},\n    {\"pr\": 3, \
             \"storage\": \"columnar + worker pool\", \
             \"repeated_candidates_context_secs\": 0.002893, \
             \"repeated_candidates_speedup\": 3.83},\n    {\"pr\": 4, \
             \"storage\": \"columnar + planner + batched prescan\", \
             \"repeated_candidates_context_secs\": 0.002764, \
             \"repeated_candidates_speedup\": 4.49, \
             \"join_ordering_speedup\": 20.23},\n",
        );
        let dense_100k = batch_cases
            .iter()
            .find(|c| c.regime == "dense" && c.rows == 100_000);
        s.push_str(&format!(
            "    {{\"pr\": 5, \"storage\": \"SoA tag/payload streams + SIMD bitmask kernel\", \
             \"repeated_candidates_context_secs\": {:.6}, \
             \"repeated_candidates_speedup\": {:.2}, \
             \"join_ordering_speedup\": {:.2}, \
             \"batch_filter_dense_100k_secs\": {:.9}}},\n",
            repeated.context_secs,
            repeated.legacy_secs / repeated.context_secs.max(1e-12),
            ordering.speedup(),
            dense_100k.map_or(0.0, |c| c.batched_secs),
        ));
        s.push_str(&format!(
            "    {{\"pr\": 6, \"storage\": \"SoA + resource governor (cooperative checks)\", \
             \"repeated_candidates_context_secs\": {:.6}, \
             \"repeated_candidates_speedup\": {:.2}, \
             \"join_ordering_speedup\": {:.2}, \
             \"governance_overhead\": {:.3}}},\n",
            repeated.context_secs,
            repeated.legacy_secs / repeated.context_secs.max(1e-12),
            ordering.speedup(),
            governance.overhead(),
        ));
        s.push_str(&format!(
            "    {{\"pr\": 7, \"storage\": \"SoA + incremental maintenance (DRed + warm \
             semi-naive deltas)\", \"repeated_candidates_context_secs\": {:.6}, \
             \"repeated_candidates_speedup\": {:.2}, \
             \"join_ordering_speedup\": {:.2}, \
             \"update_stream_speedup\": {:.2}, \
             \"update_stream_maintain_secs_per_batch\": {:.6}}},\n",
            repeated.context_secs,
            repeated.legacy_secs / repeated.context_secs.max(1e-12),
            ordering.speedup(),
            update.speedup(),
            update.maintain_secs,
        ));
        s.push_str(&format!(
            "    {{\"pr\": 8, \"storage\": \"SoA + durable checkpoint/WAL (crash recovery)\", \
             \"repeated_candidates_context_secs\": {:.6}, \
             \"repeated_candidates_speedup\": {:.2}, \
             \"join_ordering_speedup\": {:.2}, \
             \"update_stream_speedup\": {:.2}, \
             \"durability_wal_overhead\": {:.3}}},\n",
            repeated.context_secs,
            repeated.legacy_secs / repeated.context_secs.max(1e-12),
            ordering.speedup(),
            update.speedup(),
            durability.overhead(),
        ));
        s.push_str(&format!(
            "    {{\"pr\": 9, \"storage\": \"SoA + crash harness, scrubber, drift audit, \
             group commit\", \"repeated_candidates_context_secs\": {:.6}, \
             \"repeated_candidates_speedup\": {:.2}, \
             \"join_ordering_speedup\": {:.2}, \
             \"update_stream_speedup\": {:.2}, \
             \"durability_wal_overhead\": {:.3}, \
             \"durability_scrub_secs\": {:.6}, \
             \"durability_audit_secs\": {:.6}}},\n",
            repeated.context_secs,
            repeated.legacy_secs / repeated.context_secs.max(1e-12),
            ordering.speedup(),
            update.speedup(),
            durability.overhead(),
            durability.scrub_secs,
            durability.audit_secs,
        ));
        let point = point.as_ref().expect("full run");
        s.push_str(&format!(
            "    {{\"pr\": 10, \"storage\": \"SoA + demand-driven query serving (magic sets \
             + subsumptive cache)\", \"repeated_candidates_context_secs\": {:.6}, \
             \"repeated_candidates_speedup\": {:.2}, \
             \"join_ordering_speedup\": {:.2}, \
             \"update_stream_speedup\": {:.2}, \
             \"point_query_magic_speedup\": {:.2}, \
             \"point_query_cached_speedup\": {:.2}}}\n  ]",
            repeated.context_secs,
            repeated.legacy_secs / repeated.context_secs.max(1e-12),
            ordering.speedup(),
            update.speedup(),
            point.magic_speedup(),
            point.cached_speedup(),
        ));
        sections.push(s);
    }
    if !synth_cases.is_empty() {
        let mut s = String::from("  \"synthesis\": [\n");
        for (i, c) in synth_cases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"secs\": {:.4}, \"iterations\": {}}}{}\n",
                c.name,
                c.secs,
                c.iterations,
                if i + 1 < synth_cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]");
        sections.push(s);
    }
    let j = format!("{{\n{}\n}}\n", sections.join(",\n"));

    std::fs::write(&out_path, &j).expect("write BENCH_eval.json");
    println!("{j}");
    eprintln!("wrote {out_path}");
}
