//! Regenerates Figure 9a: Dynamite vs the Dynamite-Enum baseline (no MDP
//! learning) across all 28 benchmarks, as cactus-plot rows ("time to solve
//! the first n benchmarks").
//!
//! Usage: `fig9a_enum [--timeout SECS]` (default 60; the paper uses 1 h).

use std::time::Duration;

use dynamite_bench_suite::all_benchmarks;
use dynamite_core::{synthesize, Strategy, SynthesisConfig};

fn main() {
    let timeout: u64 = std::env::args()
        .skip_while(|a| a != "--timeout")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!("Figure 9a: Dynamite vs Dynamite-Enum (timeout {timeout}s)");
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let ex = b.example();
        let mut times = [f64::INFINITY; 2];
        for (i, strategy) in [Strategy::MdpGuided, Strategy::Enumerative]
            .into_iter()
            .enumerate()
        {
            let config = SynthesisConfig {
                strategy,
                timeout: Some(Duration::from_secs(timeout)),
                ..Default::default()
            };
            if let Ok(r) = synthesize(b.source(), b.target(), std::slice::from_ref(&ex), &config) {
                times[i] = r.stats.elapsed.as_secs_f64();
            }
        }
        println!(
            "{:<12} dynamite {:>9} enum {:>9}",
            b.name,
            fmt(times[0]),
            fmt(times[1])
        );
        rows.push(times);
    }
    // Cactus rows: sort each solver's times, print cumulative.
    for (i, name) in ["Dynamite", "Dynamite-Enum"].iter().enumerate() {
        let mut ts: Vec<f64> = rows
            .iter()
            .map(|r| r[i])
            .filter(|t| t.is_finite())
            .collect();
        ts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let solved = ts.len();
        let cum: f64 = ts.iter().sum();
        println!(
            "{name}: solved {solved}/28, total time on solved {cum:.1}s, per-count cactus: {}",
            ts.iter()
                .scan(0.0, |acc, t| {
                    *acc += t;
                    Some(format!("{acc:.1}"))
                })
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}

fn fmt(t: f64) -> String {
    if t.is_finite() {
        format!("{t:.2}s")
    } else {
        "timeout".to_string()
    }
}
