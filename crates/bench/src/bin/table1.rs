//! Regenerates Table 1: the datasets and their (synthetic) sizes.
//!
//! Usage: `table1 [--scale N]` (default 4).

use dynamite_bench_suite::datasets;

fn main() {
    let scale: u64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("Table 1: datasets (synthetic stand-ins at scale {scale})");
    println!(
        "{:<10} {:>10} {:>12}  Description",
        "Name", "#Records", "#Facts"
    );
    for ds in datasets::all() {
        let inst = (ds.generate)(scale, 1);
        let facts = dynamite_instance::to_facts(&inst);
        println!(
            "{:<10} {:>10} {:>12}  {}",
            ds.name,
            inst.num_records(),
            facts.num_facts(),
            ds.description
        );
    }
}
