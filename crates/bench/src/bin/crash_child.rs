//! Deterministic durable child for the out-of-process crash harness.
//!
//! Opens (or creates) a durable state directory, then applies the
//! canonical [`crash_stream`] batch stream to it — resuming from
//! wherever recovery says the directory stopped, so the parent can
//! re-run it after a kill to drive the same stream to completion.
//!
//! Crash faults are armed by the parent through the `DYNAMITE_FAULT*`
//! environment variables and kill this process mid-I/O with `abort(2)`
//! — no unwinding, no `Drop`, no buffered-writer flush — which is as
//! close to `kill -9` as a portable harness gets. The parent then
//! inspects what actually survived on disk.
//!
//! Usage:
//!
//! ```text
//! crash_child <dir> <profile> <threads> <total-batches>
//!     [--group-commit N] [--abort-after K] [--skew TAG]
//! ```
//!
//! Exit codes: 0 = stream complete; 2 = bad usage; 3 = open/create
//! failed; 4 = apply failed. Fault-point kills show up as SIGABRT.

use std::process::exit;

use dynamite_bench::crash_stream;
use dynamite_datalog::durable::DurableEvaluator;
use dynamite_datalog::{pool, reorder_default};

fn usage() -> ! {
    eprintln!(
        "usage: crash_child <dir> <profile> <threads> <total-batches> \
         [--group-commit N] [--abort-after K] [--skew TAG]"
    );
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(dir), Some(profile), Some(threads), Some(total)) =
        (args.next(), args.next(), args.next(), args.next())
    else {
        usage()
    };
    let (Ok(threads), Ok(total)) = (threads.parse::<usize>(), total.parse::<usize>()) else {
        usage()
    };
    let mut group_commit = None;
    let mut abort_after = None;
    let mut skew = None;
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--group-commit" => group_commit = value().parse::<usize>().ok().or_else(|| usage()),
            "--abort-after" => abort_after = value().parse::<usize>().ok().or_else(|| usage()),
            "--skew" => skew = Some(value()),
            _ => usage(),
        }
    }

    // Interner perturbation first, before any evaluator exists: ids for
    // every later-interned string shift relative to the parent.
    if let Some(tag) = &skew {
        crash_stream::skew_intern(tag);
    }

    let mut opts = crash_stream::options(&profile);
    if let Some(frames) = group_commit {
        let (frames, max_delay) = crash_stream::group_commit_window(frames);
        opts = opts.group_commit(frames, max_delay);
    }

    let mut dur = match DurableEvaluator::open_or_create_with_config(
        &dir,
        crash_stream::program(),
        crash_stream::seed_edb(),
        opts,
        pool::with_threads(Some(threads)),
        reorder_default(),
    ) {
        Ok(dur) => dur,
        Err(e) => {
            eprintln!("crash_child: open/create of {dir} failed: {e}");
            exit(3);
        }
    };

    let start = dur.next_seq() as usize;
    let stream = crash_stream::batches(total, crash_stream::SEED);
    let mut applied_this_run = 0usize;
    for (ins, dels) in stream.iter().skip(start) {
        if let Err(e) = dur.apply_delta(ins, dels) {
            eprintln!("crash_child: apply failed: {e}");
            exit(4);
        }
        applied_this_run += 1;
        if Some(applied_this_run) == abort_after {
            // Simulated power cut at a point of our choosing: staged
            // group-commit frames die with the process.
            std::process::abort();
        }
    }
    exit(0);
}
