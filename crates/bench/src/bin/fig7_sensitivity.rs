//! Regenerates Figures 7, 11, and 12: sensitivity to the number and
//! quality of example records.
//!
//! Usage: `fig7_sensitivity [--trials N] [--timeout SECS] [--bench NAME]`
//! (defaults: 10 trials, 20 s timeout, all 28 benchmarks; the paper uses
//! 100 trials and a 10-minute timeout).

use std::time::Duration;

use dynamite_bench_suite::sensitivity::{run, SensitivityOptions};
use dynamite_bench_suite::{all_benchmarks, by_name};

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let trials: usize = arg("--trials").and_then(|s| s.parse().ok()).unwrap_or(10);
    let timeout: u64 = arg("--timeout").and_then(|s| s.parse().ok()).unwrap_or(20);
    let only = arg("--bench");
    let opts = SensitivityOptions {
        trials,
        timeout: Duration::from_secs(timeout),
        ..Default::default()
    };
    let benches = match only {
        Some(name) => vec![by_name(&name).expect("unknown benchmark")],
        None => all_benchmarks(),
    };
    println!(
        "Figures 7/11/12: sensitivity ({} trials per size, {}s timeout)",
        trials, timeout
    );
    for b in &benches {
        println!("--- {}", b.name);
        println!("{:>3} {:>10} {:>12}", "r", "time(s)", "success(%)");
        for p in run(b, &opts) {
            println!(
                "{:>3} {:>10.3} {:>12.1}",
                p.r,
                p.avg_time.as_secs_f64(),
                p.success_rate()
            );
        }
    }
}
