//! Regenerates Table 2: benchmark statistics (source/target type,
//! number of record types, number of attributes).

use dynamite_bench_suite::all_benchmarks;

fn main() {
    println!("Table 2: benchmark statistics");
    println!(
        "{:<12} {:>4} {:>6} {:>7} {:>4} {:>6} {:>7}",
        "Benchmark", "SrcT", "#Recs", "#Attrs", "TgtT", "#Recs", "#Attrs"
    );
    let (mut sr, mut sa, mut tr, mut ta) = (0usize, 0usize, 0usize, 0usize);
    let bs = all_benchmarks();
    for b in &bs {
        let (sk, tk) = b.kinds();
        println!(
            "{:<12} {:>4} {:>6} {:>7} {:>4} {:>6} {:>7}",
            b.name,
            sk.code(),
            b.source().num_records(),
            b.source().num_attrs(),
            tk.code(),
            b.target().num_records(),
            b.target().num_attrs()
        );
        sr += b.source().num_records();
        sa += b.source().num_attrs();
        tr += b.target().num_records();
        ta += b.target().num_attrs();
    }
    let n = bs.len();
    println!(
        "{:<12} {:>4} {:>6.1} {:>7.1} {:>4} {:>6.1} {:>7.1}",
        "Average",
        "-",
        sr as f64 / n as f64,
        sa as f64 / n as f64,
        "-",
        tr as f64 / n as f64,
        ta as f64 / n as f64
    );
}
