//! Regenerates Figure 8: the (scripted) user study on Tencent-1 and
//! Retina-1. See DESIGN.md substitution 7: the Dynamite arm is fully
//! reproduced with a scripted user; the manual arm's wall-clock time is a
//! human quantity and is reported from the paper, while its correctness is
//! modeled by bug injection at the paper's observed rate.
//!
//! Usage: `fig8_user_study [--participants N]` (default 5 per arm).

use dynamite_bench_suite::by_name;
use dynamite_bench_suite::user_study::{dynamite_arm, manual_arm};

fn main() {
    let n: usize = std::env::args()
        .skip_while(|a| a != "--participants")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Figure 8: user study ({n} scripted participants per arm)");
    // Paper-reported human completion times (seconds) for context.
    let paper = [("Tencent-1", 184.0, 1800.0), ("Retina-1", 579.0, 2907.0)];
    for (name, paper_dynamite_s, paper_manual_s) in paper {
        let b = by_name(name).expect("benchmark exists");
        let dy = dynamite_arm(&b, n, 17);
        let ma = manual_arm(&b, n, 17);
        let dy_correct = dy.iter().filter(|p| p.correct).count();
        let ma_correct = ma.iter().filter(|p| p.correct).count();
        let dy_time: f64 = dy.iter().map(|p| p.time.as_secs_f64()).sum::<f64>() / n as f64;
        let dy_queries: f64 = dy.iter().map(|p| p.queries as f64).sum::<f64>() / n as f64;
        println!("--- {name}");
        println!(
            "  Dynamite arm: avg tool time {dy_time:.2}s, avg queries {dy_queries:.1}, correct {dy_correct}/{n}"
        );
        println!("  Manual arm (modeled): correct {ma_correct}/{n} (bug-injection model)");
        println!(
            "  Paper-reported human completion times: Dynamite {paper_dynamite_s}s, manual {paper_manual_s}s"
        );
    }
}
