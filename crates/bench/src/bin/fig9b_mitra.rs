//! Regenerates Figure 9b: Dynamite vs the Mitra-like baseline on the four
//! document→relational benchmarks.
//!
//! Usage: `fig9b_mitra [--timeout SECS]` (default 120).

use std::time::Duration;

use dynamite_bench_suite::baselines::mitra::synthesize_mitra;
use dynamite_bench_suite::by_name;
use dynamite_core::{synthesize, SynthesisConfig};

fn main() {
    let timeout: u64 = std::env::args()
        .skip_while(|a| a != "--timeout")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    println!("Figure 9b: Dynamite vs Mitra-like baseline (timeout {timeout}s)");
    println!(
        "{:<12} {:>14} {:>14} {:>12}",
        "Benchmark", "Dynamite(s)", "Mitra(s)", "Mitra cands"
    );
    for name in ["Yelp-1", "IMDB-1", "DBLP-1", "Mondial-1"] {
        let b = by_name(name).expect("benchmark exists");
        let ex = b.example();
        let config = SynthesisConfig {
            timeout: Some(Duration::from_secs(timeout)),
            ..Default::default()
        };
        let dy = synthesize(b.source(), b.target(), std::slice::from_ref(&ex), &config)
            .map(|r| r.stats.elapsed.as_secs_f64());
        let mi = synthesize_mitra(b.source(), b.target(), &ex, Duration::from_secs(timeout));
        match (&dy, &mi) {
            (Ok(d), Ok(m)) => println!(
                "{:<12} {:>14.3} {:>14.3} {:>12}",
                name,
                d,
                m.time.as_secs_f64(),
                m.candidates
            ),
            _ => println!(
                "{:<12} dynamite: {:?} mitra: {:?}",
                name,
                dy.map(|d| format!("{d:.3}s")).map_err(|e| e.to_string()),
                mi.as_ref()
                    .map(|m| format!("{:.3}s", m.time.as_secs_f64()))
                    .map_err(|e| e.to_string())
            ),
        }
    }
}
