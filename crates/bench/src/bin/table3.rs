//! Regenerates Table 3 (main results): per benchmark, example sizes,
//! search-space size, synthesis time, rule statistics, distance to the
//! golden program, and migration time on a generated instance.
//!
//! Usage: `table3 [--scale N]` (migration instance scale, default 4).

use std::time::Duration;

use dynamite_bench_suite::all_benchmarks;
use dynamite_core::{synthesize, SynthesisConfig};
use dynamite_datalog::alpha_equivalent;
use dynamite_migrate::migrate;

fn main() {
    let scale: u64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("Table 3: main synthesis results (migration scale {scale})");
    println!(
        "{:<12} {:>7} {:>7} {:>10} {:>9} {:>7} {:>6} {:>7} {:>6} {:>9}",
        "Benchmark",
        "ExIn",
        "ExOut",
        "Space",
        "Synth(s)",
        "#Rules",
        "Preds",
        "#Optim",
        "Dist",
        "Migr(s)"
    );

    let mut tot_synth = 0.0f64;
    let mut tot_rules = 0usize;
    let mut tot_optim = 0usize;
    let mut tot_dist = 0.0f64;
    let mut tot_migr = 0.0f64;
    let bs = all_benchmarks();
    for b in &bs {
        let ex = b.example();
        let ex_in = ex.input_records();
        let ex_out = ex.output_records();
        let config = SynthesisConfig {
            timeout: Some(Duration::from_secs(600)),
            ..Default::default()
        };
        let result = match synthesize(b.source(), b.target(), &[ex], &config) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<12} synthesis failed: {e}", b.name);
                continue;
            }
        };
        let synth_s = result.stats.elapsed.as_secs_f64();
        let n_rules = result.program.rules.len();
        let preds_per_rule = result.program.num_body_preds() as f64 / n_rules.max(1) as f64;
        // "# Optim Rules": synthesized rules α-equivalent to golden ones.
        let optim = result
            .program
            .rules
            .iter()
            .zip(&b.golden().rules)
            .filter(|(a, g)| alpha_equivalent(a, g))
            .count();
        let dist = (result.program.num_body_preds() as i64 - b.golden().num_body_preds() as i64)
            .max(0) as f64
            / n_rules.max(1) as f64;

        let source = b.generate_source(scale, 11);
        let (out, report) =
            migrate(&result.program, &source, b.target().clone()).expect("migration succeeds");
        assert!(out.num_records() > 0 || report.facts_out == 0);
        let migr_s = report.total_time().as_secs_f64();

        println!(
            "{:<12} {:>7} {:>7} {:>10} {:>9.3} {:>7} {:>6.1} {:>7} {:>6.2} {:>9.3}",
            b.name,
            ex_in,
            ex_out,
            result.stats.search_space_string(),
            synth_s,
            n_rules,
            preds_per_rule,
            optim,
            dist,
            migr_s
        );
        tot_synth += synth_s;
        tot_rules += n_rules;
        tot_optim += optim;
        tot_dist += dist;
        tot_migr += migr_s;
    }
    let n = bs.len() as f64;
    println!(
        "{:<12} {:>7} {:>7} {:>10} {:>9.3} {:>7.1} {:>6} {:>7.1} {:>6.2} {:>9.3}",
        "Average",
        "-",
        "-",
        "-",
        tot_synth / n,
        tot_rules as f64 / n,
        "-",
        tot_optim as f64 / n,
        tot_dist / n,
        tot_migr / n
    );
}
