//! Regenerates Figure 10: Dynamite vs the Eirene-like baseline on the four
//! relational→relational benchmarks — synthesis time (10a) and mapping
//! quality as redundant-predicate distance to the optimal mapping (10b).

use std::time::Duration;

use dynamite_bench_suite::baselines::eirene::{distance_to_golden, synthesize_eirene};
use dynamite_bench_suite::by_name;
use dynamite_core::{synthesize, SynthesisConfig};

fn main() {
    println!("Figure 10: Dynamite vs Eirene-like baseline");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10}",
        "Benchmark", "Dyn time(s)", "Eir time(s)", "Dyn dist", "Eir dist"
    );
    for name in ["MLB-3", "Airbnb-3", "Patent-3", "Bike-3"] {
        let b = by_name(name).expect("benchmark exists");
        let ex = b.example();
        let config = SynthesisConfig {
            timeout: Some(Duration::from_secs(120)),
            ..Default::default()
        };
        let dy = synthesize(b.source(), b.target(), std::slice::from_ref(&ex), &config)
            .expect("dynamite solves rel->rel benchmarks");
        let dy_dist = distance_to_golden(&dy.program, b.golden());
        match synthesize_eirene(b.source(), b.target(), &ex) {
            Ok(ei) => {
                let ei_dist = distance_to_golden(&ei.program, b.golden());
                println!(
                    "{:<12} {:>12.3} {:>12.3} {:>10.2} {:>10.2}",
                    name,
                    dy.stats.elapsed.as_secs_f64(),
                    ei.time.as_secs_f64(),
                    dy_dist,
                    ei_dist
                );
            }
            Err(e) => println!("{name:<12} eirene failed: {e}"),
        }
    }
}
