//! Experiment harness library (shared helpers for the table/figure
//! binaries). See the `bin/` targets and DESIGN.md's experiment index.

pub mod util {
    //! Small shared helpers for experiment binaries.

    /// Formats a natural-log-scaled count like the paper's Table 3
    /// ("5.1 × 10^39" rendered as `5.1e39`).
    pub fn format_ln_as_pow10(ln: f64) -> String {
        let log10 = ln / std::f64::consts::LN_10;
        let exp = log10.floor();
        let mantissa = 10f64.powf(log10 - exp);
        format!("{mantissa:.1}e{exp:.0}")
    }
}

pub mod crash_stream {
    //! The deterministic durable workload shared by the out-of-process
    //! crash harness (`tests/crash_harness.rs`) and its child binary
    //! (`bin/crash_child.rs`).
    //!
    //! Parent and child are **separate processes** that must compute the
    //! identical batch stream from first principles: the parent pins the
    //! recovered on-disk state bit-identically (contents *and* row
    //! order) against its own uninterrupted reference timeline, so any
    //! ambient randomness or process-local state leaking in here would
    //! be indistinguishable from a recovery bug. String data rides along
    //! deliberately — interner ids differ across processes (and can be
    //! skewed further with [`skew_intern`]), and recovery must not care.

    use std::time::Duration;

    use dynamite_datalog::durable::DurableOptions;
    use dynamite_datalog::Program;
    use dynamite_instance::{Database, Value};

    /// Batches in the canonical stream.
    pub const STREAM_LEN: usize = 12;
    /// Seed of the canonical stream.
    pub const SEED: u64 = 0x5EED_CAB1E;

    /// Deterministic LCG — same constants as the in-process durability
    /// tests; the stream must not depend on ambient randomness.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    /// Recursive reachability with labeled sources: recursion stresses
    /// the replan-at-checkpoint path, strings stress the by-content
    /// serialization path.
    pub fn program() -> Program {
        Program::parse(
            "Path(x, y) :- Edge(x, y).
             Path(x, z) :- Path(x, y), Edge(y, z).
             Reach(y) :- Source(x), Path(x, y).",
        )
        .unwrap()
    }

    fn edge(a: u64, b: u64) -> Vec<Value> {
        vec![Value::Int(a as i64), Value::Int(b as i64)]
    }

    /// The seed EDB: chain graphs plus labeled sources with string data.
    pub fn seed_edb() -> Database {
        let mut edb = Database::new();
        for c in 0..20u64 {
            let base = c * 10;
            for i in 0..6 {
                edb.insert("Edge", edge(base + i, base + i + 1));
            }
            edb.insert("Source", vec![Value::Int(base as i64)]);
            edb.insert(
                "Label",
                vec![Value::Int(base as i64), Value::str(format!("chain-{c}"))],
            );
        }
        edb
    }

    /// A deterministic stream of insert/delete batches over the chain
    /// graph.
    pub fn batches(n: usize, seed: u64) -> Vec<(Database, Database)> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|_| {
                let mut ins = Database::new();
                let mut dels = Database::new();
                for _ in 0..6 {
                    let a = rng.next() % 200;
                    ins.insert("Edge", edge(a, rng.next() % 200));
                    dels.insert("Edge", edge(rng.next() % 200, rng.next() % 200));
                }
                (ins, dels)
            })
            .collect()
    }

    /// Durability profiles the harness drives cells under.
    ///
    /// * `"aggressive"` — compaction after essentially every batch, so
    ///   checkpoint-write and WAL-rotation fault points fire early and
    ///   often;
    /// * `"walheavy"` — no automatic compaction, so every batch stays a
    ///   replayable WAL frame and append/torn-tail points dominate.
    pub fn options(profile: &str) -> DurableOptions {
        match profile {
            "aggressive" => DurableOptions {
                compact_wal_ratio: 0.0,
                compact_min_wal_bytes: 256,
                ..DurableOptions::default()
            },
            "walheavy" => DurableOptions {
                compact_min_wal_bytes: u64::MAX,
                ..DurableOptions::default()
            },
            other => panic!("unknown crash-stream profile {other:?}"),
        }
    }

    /// Group-commit window used by harness cells that stage frames: big
    /// enough (and with an unreachable age bound) that only explicit
    /// thresholds flush, making the lost suffix exactly predictable.
    pub fn group_commit_window(frames: usize) -> (usize, Duration) {
        (frames, Duration::from_secs(3600))
    }

    /// Bit-identity projection: relation contents *in row order*.
    pub fn ordered_rows(db: &Database) -> Vec<(String, Vec<Vec<Value>>)> {
        db.iter()
            .map(|(name, rel)| {
                (
                    name.to_string(),
                    rel.iter().map(|r| r.iter().collect()).collect(),
                )
            })
            .collect()
    }

    /// Perturbs the process-global interner with `tag`-derived strings
    /// so this process's interner ids diverge wildly from any other
    /// process's. Recovery bit-identity must survive this — column
    /// statistics (and therefore join plans) are a function of string
    /// *content*, never of interner ids.
    pub fn skew_intern(tag: &str) {
        for i in 0..512 {
            let _ = Value::str(format!("skew-{tag}-{i}"));
        }
    }
}
