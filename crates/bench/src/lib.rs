//! Experiment harness library (shared helpers for the table/figure
//! binaries). See the `bin/` targets and DESIGN.md's experiment index.

pub mod util {
    //! Small shared helpers for experiment binaries.

    /// Formats a natural-log-scaled count like the paper's Table 3
    /// ("5.1 × 10^39" rendered as `5.1e39`).
    pub fn format_ln_as_pow10(ln: f64) -> String {
        let log10 = ln / std::f64::consts::LN_10;
        let exp = log10.floor();
        let mantissa = 10f64.powf(log10 - exp);
        format!("{mantissa:.1}e{exp:.0}")
    }
}
