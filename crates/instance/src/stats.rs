//! Incrementally maintained per-column statistics for [`TupleStore`].
//!
//! The Datalog engine's cost-based join planner needs, per relation, a
//! row count plus per-column *distinct-value estimates* and *bounds* —
//! cheap enough to maintain on every insert (the fixpoint's `absorb`
//! path inserts millions of rows) yet accurate enough to order joins by
//! estimated cardinality. [`ColumnStats`] therefore keeps exactly two
//! small summaries per column:
//!
//! - **Bounds**: the least and greatest [`Value::to_stable_bits`]
//!   pattern observed. Stable-bit order is a total order on patterns
//!   consistent with value equality in one direction (equal values have
//!   equal patterns), so `excludes` can prune a constant probe whose
//!   pattern lies outside the observed range — soundly, because a value
//!   whose pattern is outside `[min, max]` cannot share a pattern with
//!   any stored value. (Distinct strings may *collide* on a pattern,
//!   which can only make pruning less effective, never wrong.)
//! - **KMV distinct sketch**: the `K` smallest distinct value-hashes
//!   seen (the classic k-minimum-values estimator). Below `K` distinct
//!   values the estimate is exact (up to hash collisions); above it, the
//!   `K`-th smallest hash estimates the density of distinct hashes over
//!   the `u64` space with ~`1/√(K-2)` relative error. Steady-state
//!   maintenance cost is one hash and one compare per value — updates to
//!   the sketch itself become exponentially rare as the store grows.
//!
//! Two invariants the consumers rely on:
//!
//! - statistics describe **exactly the stored column contents**:
//!   [`ColumnStats::observe`] runs once per value of every *accepted*
//!   (deduplicated) insert, and only for tracked stores — untracked
//!   stores report no statistics at all rather than stale ones;
//! - every summary is a pure function of the stored **value set**, via
//!   the process-independent [`Value::to_stable_bits`] pattern (`Str`
//!   payloads are content hashes, not intern-table indices). The planner
//!   therefore derives identical estimates — hence identical join orders
//!   and identical output row order — in every process that holds the
//!   same data, which is what makes durable recovery bit-identical
//!   across process restarts;
//! - the bound order is consistent with equality but **not** with
//!   [`Value`]'s semantic `Ord` — sound for membership pruning
//!   (`excludes`) and nothing else.
//!
//! [`TupleStore`]: crate::TupleStore
//! [`Value`]: crate::Value
//! [`Value::to_stable_bits`]: crate::Value::to_stable_bits

use std::hash::Hasher;

use crate::hash::FxHasher;
use crate::value::Value;

/// Sketch size: estimates are exact below 64 distinct values and ~13%
/// relative error above. 64 `u64`s (512 B) per column is small enough to
/// keep statistics always-on.
const KMV_K: usize = 64;

/// Hash of one canonical value bit pattern (the sketch's hash space).
#[inline]
fn hash_bits(bits: u128) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(bits as u64);
    h.write_u64((bits >> 64) as u64);
    h.finish()
}

/// Incremental statistics over one column of a
/// [`TupleStore`](crate::TupleStore): observed value bounds (in
/// [`Value::to_stable_bits`] order) and a KMV distinct-count sketch.
#[derive(Clone, Debug, Default)]
pub struct ColumnStats {
    /// `(min, max)` of the observed `to_stable_bits` patterns; `None`
    /// while the column is empty.
    bounds: Option<(u128, u128)>,
    /// The `KMV_K` smallest **distinct** value-hashes seen, ascending.
    kmv: Vec<u64>,
}

impl ColumnStats {
    /// Folds one observed value into the summaries. Called by the store
    /// for every value of every *newly inserted* (i.e. deduplicated) row,
    /// so the statistics describe exactly the stored column contents.
    #[inline]
    pub(crate) fn observe(&mut self, v: Value) {
        let bits = v.to_stable_bits();
        match &mut self.bounds {
            None => self.bounds = Some((bits, bits)),
            Some((lo, hi)) => {
                if bits < *lo {
                    *lo = bits;
                }
                if bits > *hi {
                    *hi = bits;
                }
            }
        }
        let h = hash_bits(bits);
        if self.kmv.len() < KMV_K {
            if let Err(i) = self.kmv.binary_search(&h) {
                self.kmv.insert(i, h);
            }
        } else if h < self.kmv[KMV_K - 1] {
            if let Err(i) = self.kmv.binary_search(&h) {
                self.kmv.pop();
                self.kmv.insert(i, h);
            }
        }
    }

    /// `true` when `v` is provably absent from the column: nothing was
    /// ever observed, or `v`'s stable bit pattern lies outside the
    /// observed range. A `false` return means only "possibly present".
    #[inline]
    pub fn excludes(&self, v: Value) -> bool {
        match self.bounds {
            None => true,
            Some((lo, hi)) => {
                let b = v.to_stable_bits();
                b < lo || b > hi
            }
        }
    }

    /// Estimated number of distinct values in the column. `rows` (the
    /// store's row count) caps the estimate — a column can never hold
    /// more distinct values than the store holds rows.
    pub fn distinct_estimate(&self, rows: usize) -> usize {
        let k = self.kmv.len();
        if k < KMV_K {
            // Sketch not saturated: it holds every distinct hash seen.
            return k.min(rows);
        }
        // Saturated: the K-th smallest of n uniform hashes sits near
        // K/n · 2^64, so n ≈ (K-1) · 2^64 / kth (the unbiased form).
        let kth = self.kmv[KMV_K - 1].max(1);
        let est = (KMV_K - 1) as f64 * (u64::MAX as f64) / (kth as f64);
        (est as usize).clamp(KMV_K, rows.max(KMV_K))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_column_excludes_everything() {
        let s = ColumnStats::default();
        assert!(s.excludes(Value::Int(0)));
        assert_eq!(s.distinct_estimate(0), 0);
    }

    #[test]
    fn bounds_prune_out_of_range_probes() {
        let mut s = ColumnStats::default();
        for i in 10..20i64 {
            s.observe(Value::Int(i));
        }
        assert!(!s.excludes(Value::Int(10)));
        assert!(!s.excludes(Value::Int(15)));
        assert!(!s.excludes(Value::Int(19)));
        // Outside the observed range (in bit order, which for non-negative
        // ints matches numeric order).
        assert!(s.excludes(Value::Int(9)));
        assert!(s.excludes(Value::Int(20)));
        // Other variants have disjoint tag words, hence out of range.
        assert!(s.excludes(Value::Id(15)));
        assert!(s.excludes(Value::Bool(true)));
    }

    #[test]
    fn string_stats_are_a_function_of_the_value_set() {
        // Intern-order independence: observing the same string set in two
        // different orders (and with unrelated strings interned in
        // between, shifting every intern index) yields identical
        // summaries. This is the property cross-process deterministic
        // planning rests on.
        let mut a = ColumnStats::default();
        for s in ["st-one", "st-two", "st-three"] {
            a.observe(Value::str(s));
        }
        let _skew = Value::str("st-unrelated-padding");
        let mut b = ColumnStats::default();
        for s in ["st-three", "st-one", "st-two"] {
            b.observe(Value::str(s));
        }
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(!a.excludes(Value::str("st-two")));
        assert_eq!(a.distinct_estimate(3), 3);
    }

    #[test]
    fn small_cardinalities_are_exact() {
        let mut s = ColumnStats::default();
        for i in 0..1000i64 {
            s.observe(Value::Int(i % 7));
        }
        assert_eq!(s.distinct_estimate(1000), 7);
    }

    #[test]
    fn large_cardinalities_estimate_within_tolerance() {
        let mut s = ColumnStats::default();
        let n = 20_000i64;
        for i in 0..n {
            s.observe(Value::Int(i));
        }
        let est = s.distinct_estimate(n as usize) as f64;
        // KMV with K = 64 has ~13% standard error; the hash stream is
        // deterministic, so this bound is stable.
        assert!(
            (est - n as f64).abs() / n as f64 <= 0.5,
            "estimate {est} too far from {n}"
        );
        // And orders of magnitude must separate: a 7-distinct column
        // estimates far below a 20k-distinct one.
        let mut small = ColumnStats::default();
        for i in 0..n {
            small.observe(Value::Int(i % 7));
        }
        assert!(small.distinct_estimate(n as usize) * 100 < est as usize);
    }

    #[test]
    fn duplicate_hashes_do_not_inflate_the_sketch() {
        let mut s = ColumnStats::default();
        for _ in 0..100 {
            for i in 0..5i64 {
                s.observe(Value::Int(i));
            }
        }
        assert_eq!(s.distinct_estimate(5), 5);
    }

    #[test]
    fn estimate_is_capped_by_row_count() {
        let mut s = ColumnStats::default();
        for i in 0..10i64 {
            s.observe(Value::Int(i));
        }
        assert_eq!(s.distinct_estimate(3), 3);
    }
}
