//! An in-crate implementation of the Fx hash algorithm (the rustc hasher).
//!
//! Datalog evaluation is dominated by hash-map operations on tuples of
//! small values; the default SipHash is needlessly slow for this workload
//! and HashDoS resistance is irrelevant (inputs are the user's own data).
//! The algorithm is the well-known multiply-rotate word hash used by rustc;
//! implemented here directly so the workspace stays dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash algorithm (a truncation of π).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&(1, 2)), hash_of(&(2, 1)));
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        assert_eq!(m.get([1, 2, 3].as_slice()), Some(&7));
    }
}
