//! Instance ⇄ Datalog fact translation (paper §3.3).
//!
//! *From instances to facts*: each record type `N` becomes an extensional
//! relation `R_N`; each record `r = {a1: v1, …, an: vn}` becomes a fact
//! `R_N(c0, c1, …, cn)` where `c0` is the parent's identifier when `N` is
//! nested, `ci` is `vi` for primitive attributes, and `ci` is `Id(r)` for
//! record-typed attributes.
//!
//! *From facts to instances*: `BuildRecord` rebuilds records recursively by
//! chasing identifiers from record-typed columns into the first column of
//! the nested relation. Child lookup goes through a hash index on the
//! parent-id column — the in-memory equivalent of the MongoDB index the
//! paper's implementation uses (§5).

use std::fmt;
use std::sync::Arc;

use dynamite_schema::Schema;

use crate::database::{ColumnIndex, Database, Relation};
use crate::record::{Field, Instance, InstanceError, Record};
use crate::tuple_store::RowRef;
use crate::value::Value;

/// Generator of fresh synthetic record identifiers.
#[derive(Debug, Default)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> IdGen {
        IdGen::default()
    }

    /// Returns a fresh identifier.
    pub fn fresh(&mut self) -> Value {
        let v = Value::Id(self.next);
        self.next += 1;
        v
    }
}

/// Errors raised while rebuilding instances from facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactsError {
    /// A relation's arity does not match what the schema dictates (§3.3).
    Arity {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// A rebuilt record failed schema validation (e.g. a value of the wrong
    /// primitive type in some column).
    Validation(InstanceError),
}

impl fmt::Display for FactsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactsError::Arity {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` has arity {got}, schema requires {expected}"
            ),
            FactsError::Validation(e) => write!(f, "invalid rebuilt record: {e}"),
        }
    }
}

impl std::error::Error for FactsError {}

impl From<InstanceError> for FactsError {
    fn from(e: InstanceError) -> FactsError {
        FactsError::Validation(e)
    }
}

/// Errors raised while parsing Soufflé-style `.facts` text.
///
/// Every variant carries the relation name and a 1-based line number, so
/// malformed external input produces a pinpointed diagnostic instead of a
/// panic deep inside tuple-store code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactsParseError {
    /// A row's column count differs from the preceding rows'.
    Ragged {
        relation: String,
        line: usize,
        expected: usize,
        got: usize,
    },
    /// A string cell ends in a dangling `\` or uses an escape other than
    /// `\\`, `\t`, `\n`.
    BadEscape {
        relation: String,
        line: usize,
        column: usize,
    },
    /// The same relation appears twice in one file set.
    DuplicateRelation { relation: String },
}

impl fmt::Display for FactsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactsParseError::Ragged {
                relation,
                line,
                expected,
                got,
            } => write!(
                f,
                "{relation}.facts line {line}: row has {got} columns, expected {expected}"
            ),
            FactsParseError::BadEscape {
                relation,
                line,
                column,
            } => write!(
                f,
                "{relation}.facts line {line}, column {column}: bad escape sequence \
                 (only \\\\, \\t, \\n are recognized)"
            ),
            FactsParseError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` appears more than once")
            }
        }
    }
}

impl std::error::Error for FactsParseError {}

/// Parses one relation's `.facts` text — the reader for the format
/// `dynamite_migrate::writers::render_facts` emits: one tab-separated row
/// per line, `\\`/`\t`/`\n` escapes inside string cells, `#N` synthetic
/// identifiers, bare integers, and `true`/`false` booleans.
///
/// Like Soufflé's, the format is not self-describing: a cell that *looks*
/// numeric (or boolean, or like an id) is read as that value, so
/// `Value::Str("7")` does not survive a round trip as a string — schema
/// validation downstream ([`from_facts`]) is what assigns final types.
/// Blank lines are skipped; the relation's arity is fixed by its first
/// row, and a ragged row is a typed error, not a panic.
pub fn parse_facts(relation: &str, text: &str) -> Result<Relation, FactsParseError> {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut arity: Option<usize> = None;
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let row = line
            .split('\t')
            .enumerate()
            .map(|(col, cell)| parse_cell(relation, idx + 1, col + 1, cell))
            .collect::<Result<Vec<Value>, FactsParseError>>()?;
        match arity {
            None => arity = Some(row.len()),
            Some(a) if a != row.len() => {
                return Err(FactsParseError::Ragged {
                    relation: relation.to_string(),
                    line: idx + 1,
                    expected: a,
                    got: row.len(),
                })
            }
            Some(_) => {}
        }
        rows.push(row);
    }
    let mut rel = Relation::new(arity.unwrap_or(0));
    for row in &rows {
        rel.insert(row);
    }
    Ok(rel)
}

/// Parses a set of `(file name, contents)` pairs — as produced by
/// `render_facts` — into a fact [`Database`]. A trailing `.facts`
/// extension on a name is stripped; the remainder is the relation name.
pub fn parse_facts_files<'a, I>(files: I) -> Result<Database, FactsParseError>
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut relations = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (name, text) in files {
        let relation = name.strip_suffix(".facts").unwrap_or(name);
        if !seen.insert(relation.to_string()) {
            return Err(FactsParseError::DuplicateRelation {
                relation: relation.to_string(),
            });
        }
        relations.push((relation.to_string(), parse_facts(relation, text)?));
    }
    Ok(Database::from_relations(relations))
}

fn parse_cell(
    relation: &str,
    line: usize,
    column: usize,
    cell: &str,
) -> Result<Value, FactsParseError> {
    if let Some(digits) = cell.strip_prefix('#') {
        if let Ok(n) = digits.parse::<u64>() {
            return Ok(Value::Id(n));
        }
    }
    if let Ok(n) = cell.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    match cell {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let mut s = String::with_capacity(cell.len());
    let mut chars = cell.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            s.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => s.push('\\'),
            Some('t') => s.push('\t'),
            Some('n') => s.push('\n'),
            _ => {
                return Err(FactsParseError::BadEscape {
                    relation: relation.to_string(),
                    line,
                    column,
                })
            }
        }
    }
    Ok(Value::str(s))
}

/// Translates a database instance into Datalog facts (§3.3).
pub fn to_facts(instance: &Instance) -> Database {
    let mut gen = IdGen::new();
    to_facts_with(instance, &mut gen)
}

/// Like [`to_facts`], but drawing identifiers from the supplied generator,
/// so several instances can share one id space.
pub fn to_facts_with(instance: &Instance, gen: &mut IdGen) -> Database {
    let schema = instance.schema();
    let mut db = Database::new();
    // Pre-create every relation so empty record types are represented.
    for record in schema.records() {
        db.relation_mut(record, schema.fact_arity(record));
    }

    fn emit(
        schema: &Schema,
        record_type: &str,
        record: &Record,
        parent: Option<&Value>,
        gen: &mut IdGen,
        db: &mut Database,
    ) {
        let my_id = gen.fresh();
        let attrs = schema.attrs(record_type);
        let mut tuple = Vec::with_capacity(attrs.len() + 1);
        if let Some(p) = parent {
            tuple.push(*p);
        }
        for field in record.fields() {
            match field {
                Field::Prim(v) => tuple.push(*v),
                Field::Children(_) => tuple.push(my_id),
            }
        }
        db.relation_mut(record_type, tuple.len()).insert(&tuple);
        for (attr, field) in attrs.iter().zip(record.fields()) {
            if let Field::Children(children) = field {
                for c in children {
                    emit(schema, attr, c, Some(&my_id), gen, db);
                }
            }
        }
    }

    for (record_type, records) in instance.iter() {
        for r in records {
            emit(schema, record_type, r, None, gen, &mut db);
        }
    }
    db
}

/// Rebuilds a database instance from Datalog facts over `schema`'s record
/// relations (the `BuildRecord` procedure of §3.3).
///
/// Relations missing from `facts` are treated as empty. Extra relations in
/// `facts` that are not record types of `schema` are ignored.
pub fn from_facts(facts: &Database, schema: Arc<Schema>) -> Result<Instance, FactsError> {
    // Arity check up front for clearer errors.
    for record in schema.records() {
        if let Some(rel) = facts.relation(record) {
            let expected = schema.fact_arity(record);
            if !rel.is_empty() && rel.arity() != expected {
                return Err(FactsError::Arity {
                    relation: record.to_string(),
                    expected,
                    got: rel.arity(),
                });
            }
        }
    }

    // Parent-id index for every nested record type (MongoDB substitute).
    let empty = Relation::new(0);
    let mut indices = std::collections::HashMap::new();
    for record in schema.records() {
        if schema.is_nested(record) {
            let rel = facts.relation(record).unwrap_or(&empty);
            if rel.arity() > 0 {
                indices.insert(record.to_string(), ColumnIndex::build(rel, &[0]));
            }
        }
    }

    fn build(
        schema: &Schema,
        facts: &Database,
        indices: &std::collections::HashMap<String, ColumnIndex>,
        record_type: &str,
        tuple: RowRef<'_>,
        nested: bool,
    ) -> Record {
        let mut fields = Vec::new();
        for (col, attr) in (usize::from(nested)..).zip(schema.attrs(record_type)) {
            if schema.is_record(attr) {
                let slot = tuple.at(col);
                let children: Vec<Record> = match (facts.relation(attr), indices.get(attr)) {
                    (Some(rel), Some(idx)) => idx
                        .get(&[slot])
                        .iter()
                        .map(|&i| {
                            let child = rel.get(i).expect("index in range");
                            build(schema, facts, indices, attr, child, true)
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                fields.push(Field::Children(children));
            } else {
                fields.push(Field::Prim(tuple.at(col)));
            }
        }
        Record::with_fields(fields)
    }

    let mut instance = Instance::new(schema.clone());
    for record_type in schema.top_level_records() {
        if let Some(rel) = facts.relation(record_type) {
            for tuple in rel.iter() {
                let record = build(&schema, facts, &indices, record_type, tuple, false);
                instance.insert(record_type, record)?;
            }
        }
    }
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamite_schema::Schema;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::parse(
                "@document
                 Univ { id: Int, name: String, Admit { uid: Int, count: Int } }",
            )
            .unwrap(),
        )
    }

    fn example_instance() -> Instance {
        // Figure 2(a) of the paper.
        let mut inst = Instance::new(schema());
        for (id, name, admits) in [
            (1, "U1", vec![(1, 10), (2, 50)]),
            (2, "U2", vec![(2, 20), (1, 40)]),
        ] {
            inst.insert(
                "Univ",
                Record::with_fields(vec![
                    Value::Int(id).into(),
                    Value::str(name).into(),
                    admits
                        .iter()
                        .map(|&(u, c)| Record::from_values(vec![u.into(), c.into()]))
                        .collect::<Vec<_>>()
                        .into(),
                ]),
            )
            .unwrap();
        }
        inst
    }

    #[test]
    fn example4_fact_shape() {
        // Example 4: Univ(1, "U1", id1), Admit(id1, 1, 10), …
        let facts = to_facts(&example_instance());
        let univ = facts.relation("Univ").unwrap();
        let admit = facts.relation("Admit").unwrap();
        assert_eq!(univ.len(), 2);
        assert_eq!(admit.len(), 4);
        assert_eq!(univ.arity(), 3);
        assert_eq!(admit.arity(), 3);
        // Each Univ fact's third column is an id that exactly the right two
        // Admit facts reference in their first column.
        for u in univ.iter() {
            let uid = u.at(2);
            assert!(uid.is_id());
            let children: Vec<_> = admit.iter().filter(|a| a.at(0) == uid).collect();
            assert_eq!(children.len(), 2);
        }
    }

    #[test]
    fn round_trip_preserves_canonical_instance() {
        let inst = example_instance();
        let back = from_facts(&to_facts(&inst), schema()).unwrap();
        assert!(inst.canon_eq(&back));
        assert_eq!(back.num_records(), 6);
    }

    #[test]
    fn missing_nested_relation_means_no_children() {
        let inst = example_instance();
        let mut facts = to_facts(&inst);
        facts = {
            // Rebuild a database without the Admit relation.
            let mut db = Database::new();
            let univ = facts.relation("Univ").unwrap();
            for t in univ.iter() {
                db.relation_mut("Univ", 3).insert_row(t);
            }
            db
        };
        let back = from_facts(&facts, schema()).unwrap();
        assert_eq!(back.records("Univ").len(), 2);
        assert!(back.records("Univ")[0].children(2).unwrap().is_empty());
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut db = Database::new();
        db.insert("Univ", vec![Value::Int(1)]);
        let err = from_facts(&db, schema()).unwrap_err();
        assert!(matches!(err, FactsError::Arity { .. }));
    }

    #[test]
    fn ill_typed_facts_are_rejected() {
        let mut db = Database::new();
        // name column holds an Int — violates the schema.
        db.insert("Univ", vec![Value::Int(1), Value::Int(99), Value::Id(0)]);
        let err = from_facts(&db, schema()).unwrap_err();
        assert!(matches!(err, FactsError::Validation(_)));
    }

    #[test]
    fn parse_facts_reads_the_rendered_format() {
        // Pins of `render_facts` output (see dynamite-migrate's writers
        // tests): ints, strings, and ids round-trip.
        let rel = parse_facts("Univ", "1\tU1\t#100\n2\tU2\t#200\n").unwrap();
        assert_eq!(rel.arity(), 3);
        assert_eq!(rel.len(), 2);
        let rows: Vec<Vec<Value>> = rel.iter().map(|r| r.iter().collect()).collect();
        assert_eq!(
            rows[0],
            vec![Value::Int(1), Value::str("U1"), Value::Id(100)]
        );
        assert_eq!(
            rows[1],
            vec![Value::Int(2), Value::str("U2"), Value::Id(200)]
        );
    }

    #[test]
    fn parse_facts_unescapes_structural_characters() {
        let rel = parse_facts("R", "a\\tb\tc\\nd\\\\e\n").unwrap();
        let rows: Vec<Vec<Value>> = rel.iter().map(|r| r.iter().collect()).collect();
        assert_eq!(rows, vec![vec![Value::str("a\tb"), Value::str("c\nd\\e")]]);
    }

    #[test]
    fn parse_facts_reads_bools_and_negative_ints() {
        let rel = parse_facts("R", "true\t-7\nfalse\t0\n").unwrap();
        let rows: Vec<Vec<Value>> = rel.iter().map(|r| r.iter().collect()).collect();
        assert_eq!(rows[0], vec![Value::Bool(true), Value::Int(-7)]);
        assert_eq!(rows[1], vec![Value::Bool(false), Value::Int(0)]);
    }

    #[test]
    fn ragged_row_is_a_typed_error_with_line_number() {
        let err = parse_facts("R", "1\t2\n1\t2\t3\n").unwrap_err();
        assert_eq!(
            err,
            FactsParseError::Ragged {
                relation: "R".to_string(),
                line: 2,
                expected: 2,
                got: 3,
            }
        );
    }

    #[test]
    fn bad_escape_is_a_typed_error() {
        let err = parse_facts("R", "oops\\q\n").unwrap_err();
        assert!(matches!(
            err,
            FactsParseError::BadEscape {
                line: 1,
                column: 1,
                ..
            }
        ));
        // Dangling backslash at end of cell.
        let err = parse_facts("R", "x\ttrailing\\\n").unwrap_err();
        assert!(matches!(err, FactsParseError::BadEscape { column: 2, .. }));
    }

    #[test]
    fn parse_facts_files_builds_a_database() {
        let db = parse_facts_files([
            ("Univ.facts", "1\tU1\t#0\n"),
            ("Admit.facts", "#0\t1\t10\n#0\t2\t50\n"),
        ])
        .unwrap();
        assert_eq!(db.relation("Univ").unwrap().len(), 1);
        assert_eq!(db.relation("Admit").unwrap().len(), 2);
        // The rebuilt facts pass the full §3.3 instance reconstruction.
        let inst = from_facts(&db, schema()).unwrap();
        assert_eq!(inst.num_records(), 3);

        let err = parse_facts_files([("R.facts", "1\n"), ("R", "2\n")]).unwrap_err();
        assert!(matches!(err, FactsParseError::DuplicateRelation { .. }));
    }

    #[test]
    fn shared_id_space() {
        let mut gen = IdGen::new();
        let a = to_facts_with(&example_instance(), &mut gen);
        let b = to_facts_with(&example_instance(), &mut gen);
        let ids = |db: &Database| -> std::collections::HashSet<Value> {
            db.relation("Univ")
                .unwrap()
                .iter()
                .map(|t| t.at(2))
                .collect()
        };
        assert!(ids(&a).is_disjoint(&ids(&b)));
    }
}
