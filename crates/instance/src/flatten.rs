//! Canonical, id-free flattening of instances.
//!
//! The paper compares the actual Datalog output `O′` against the expected
//! output `O` (§4.1) and computes minimal distinguishing projections over
//! output *attributes* (§4.3). When the target schema contains nested
//! records, raw output facts carry synthetic record identifiers that differ
//! between runs, so fact-level comparison is not meaningful. Flattening
//! eliminates identifiers: each record type `N` becomes a table whose
//! columns are the primitive attributes of `N`'s ancestors followed by
//! `N`'s own primitive attributes, and whose rows are the root-to-record
//! paths. Two instances have equal flattenings iff they agree on all data
//! and all parent/child groupings, independent of id values, record order,
//! and duplicates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::record::{Field, Instance, Record};
use crate::value::Value;

/// One flattened table: named columns plus a canonical row set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatTable {
    /// Column names: ancestor primitive attributes (outermost first), then
    /// the record type's own primitive attributes, in schema order.
    pub columns: Vec<String>,
    /// Canonical set of rows.
    pub rows: BTreeSet<Vec<Value>>,
}

impl FlatTable {
    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Projects the rows onto the given column indices (set semantics).
    pub fn project(&self, cols: &[usize]) -> BTreeSet<Vec<Value>> {
        self.rows
            .iter()
            .map(|r| cols.iter().map(|&c| r[c]).collect())
            .collect()
    }
}

/// The canonical flattening of an instance: one [`FlatTable`] per record
/// type (including nested types), keyed by record type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flattened(pub BTreeMap<String, FlatTable>);

impl Flattened {
    /// The table for record type `name`.
    pub fn table(&self, name: &str) -> Option<&FlatTable> {
        self.0.get(name)
    }

    /// Iterates `(record type, table)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FlatTable)> {
        self.0.iter().map(|(n, t)| (n.as_str(), t))
    }
}

impl fmt::Display for Flattened {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, table) in &self.0 {
            writeln!(f, "{name}({}):", table.columns.join(", "))?;
            for row in &table.rows {
                let cells: Vec<String> = row.iter().map(Value::to_string).collect();
                writeln!(f, "  ({})", cells.join(", "))?;
            }
        }
        Ok(())
    }
}

/// Computes the canonical flattening of `instance`.
pub fn flatten(instance: &Instance) -> Flattened {
    let schema = instance.schema();
    let mut tables: BTreeMap<String, FlatTable> = BTreeMap::new();
    // Pre-create a table for every record type so empty types still appear
    // (distinguishing "no records" from "type absent").
    for record in schema.records() {
        let mut columns = Vec::new();
        for ancestor in schema.chain_to(record) {
            for a in schema.attrs(ancestor) {
                if schema.is_prim(a) {
                    columns.push(a.clone());
                }
            }
        }
        tables.insert(
            record.to_string(),
            FlatTable {
                columns,
                rows: BTreeSet::new(),
            },
        );
    }

    fn walk(
        schema: &dynamite_schema::Schema,
        record_type: &str,
        record: &Record,
        prefix: &[Value],
        tables: &mut BTreeMap<String, FlatTable>,
    ) {
        let mut row: Vec<Value> = prefix.to_vec();
        for (attr, field) in schema.attrs(record_type).iter().zip(record.fields()) {
            if schema.is_prim(attr) {
                if let Field::Prim(v) = field {
                    row.push(*v);
                }
            }
        }
        tables
            .get_mut(record_type)
            .expect("all record types pre-created")
            .rows
            .insert(row.clone());
        for (attr, field) in schema.attrs(record_type).iter().zip(record.fields()) {
            if let Field::Children(children) = field {
                for c in children {
                    walk(schema, attr, c, &row, tables);
                }
            }
        }
    }

    for (record_type, records) in instance.iter() {
        for r in records {
            walk(schema, record_type, r, &[], &mut tables);
        }
    }
    Flattened(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamite_schema::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::parse(
                "@document
                 Univ { id: Int, name: String, Admit { uid: Int, count: Int } }",
            )
            .unwrap(),
        )
    }

    fn univ(id: i64, name: &str, admits: &[(i64, i64)]) -> Record {
        Record::with_fields(vec![
            Value::Int(id).into(),
            Value::str(name).into(),
            admits
                .iter()
                .map(|&(u, c)| Record::from_values(vec![u.into(), c.into()]))
                .collect::<Vec<_>>()
                .into(),
        ])
    }

    #[test]
    fn child_rows_carry_parent_attributes() {
        let mut inst = Instance::new(schema());
        inst.insert("Univ", univ(1, "U1", &[(2, 50)])).unwrap();
        let flat = flatten(&inst);
        let admit = flat.table("Admit").unwrap();
        assert_eq!(admit.columns, vec!["id", "name", "uid", "count"]);
        let row = admit.rows.iter().next().unwrap();
        assert_eq!(
            row,
            &vec![
                Value::Int(1),
                Value::str("U1"),
                Value::Int(2),
                Value::Int(50)
            ]
        );
    }

    #[test]
    fn grouping_differences_are_visible() {
        // Same multiset of parent and child data, different grouping.
        let mut a = Instance::new(schema());
        a.insert("Univ", univ(1, "U1", &[(1, 10)])).unwrap();
        a.insert("Univ", univ(2, "U2", &[(2, 20)])).unwrap();
        let mut b = Instance::new(schema());
        b.insert("Univ", univ(1, "U1", &[(2, 20)])).unwrap();
        b.insert("Univ", univ(2, "U2", &[(1, 10)])).unwrap();
        assert_ne!(flatten(&a), flatten(&b));
    }

    #[test]
    fn empty_record_types_present() {
        let inst = Instance::new(schema());
        let flat = flatten(&inst);
        assert!(flat.table("Univ").unwrap().rows.is_empty());
        assert!(flat.table("Admit").unwrap().rows.is_empty());
    }

    #[test]
    fn projection_by_column_name() {
        let mut inst = Instance::new(schema());
        inst.insert("Univ", univ(1, "U1", &[(1, 10), (2, 50)]))
            .unwrap();
        let flat = flatten(&inst);
        let admit = flat.table("Admit").unwrap();
        let c = admit.column_index("count").unwrap();
        let proj = admit.project(&[c]);
        assert_eq!(proj.len(), 2);
        assert!(proj.contains(&vec![Value::Int(10)]));
    }
}
