//! Binary serialization for [`Value`], [`Relation`], and [`Database`] —
//! the codec underneath the durability layer's checkpoints and write-ahead
//! log (`dynamite_datalog::durable`).
//!
//! # Design constraints
//!
//! - **Strings serialize by text, never by interner id.**
//!   [`Symbol`](crate::Symbol) indices are dense handles into a
//!   *process-global* append-only table; the table's layout depends on
//!   interning order, so a raw index written by one process is garbage
//!   to the next.
//!   [`write_value`] therefore emits the UTF-8 bytes and [`read_value`]
//!   re-interns them, which also guarantees a decoded store's per-column
//!   statistics match a live store's (statistics are a function of the
//!   current distinct-value set).
//! - **Deterministic bytes.** Encoding a database twice — or encoding the
//!   result of a decode — produces identical bytes: relations serialize
//!   in [`Database`]'s name order (a `BTreeMap`) and rows in insertion
//!   order, which the decoder reproduces by re-inserting in sequence.
//! - **Fail closed.** Every decoder returns a typed, position-carrying
//!   [`BinError`] instead of panicking; the durability layer maps any
//!   decode error to "this checkpoint/frame is corrupt" and falls back.
//!
//! All integers are little-endian fixed width. The checkpoint/WAL *file*
//! framing (magic numbers, CRC placement, fsync discipline) lives with
//! the durability layer; this module is only the payload codec plus the
//! shared [`crc32`] routine.

use std::fmt;

use crate::{Database, Relation, Value};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes` —
/// the checksum framing every WAL frame and checkpoint payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table built on first use; 1 KiB, shared process-wide.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[usize::from((crc as u8) ^ b)] ^ (crc >> 8);
    }
    !crc
}

/// A decode failure: what went wrong and the byte offset (within the
/// buffer handed to the [`Reader`]) where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinError {
    /// Byte offset at which the error was detected.
    pub at: usize,
    /// What went wrong.
    pub kind: BinErrorKind,
}

/// The kinds of [`BinError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinErrorKind {
    /// The buffer ended mid-field (`needed` more bytes).
    UnexpectedEof {
        /// How many more bytes the field required.
        needed: usize,
    },
    /// A value tag byte outside the known variants.
    BadValueTag(u8),
    /// A string field that is not valid UTF-8.
    BadUtf8,
    /// A structural invariant failed (duplicate row, out-of-order
    /// relation name, length overflow, …).
    Corrupt(&'static str),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            BinErrorKind::UnexpectedEof { needed } => {
                write!(
                    f,
                    "unexpected end of input at byte {} ({needed} more bytes needed)",
                    self.at
                )
            }
            BinErrorKind::BadValueTag(tag) => {
                write!(f, "invalid value tag {tag} at byte {}", self.at)
            }
            BinErrorKind::BadUtf8 => write!(f, "invalid UTF-8 in string at byte {}", self.at),
            BinErrorKind::Corrupt(what) => {
                write!(f, "corrupt encoding at byte {}: {what}", self.at)
            }
        }
    }
}

impl std::error::Error for BinError {}

/// A position-tracked reader over a byte buffer. Every read either
/// consumes exactly its field or returns a [`BinError`] carrying the
/// offset it failed at; nothing panics on malformed input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` with the cursor at offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// The current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` once the whole buffer is consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, kind: BinErrorKind) -> BinError {
        BinError { at: self.pos, kind }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(self.err(BinErrorKind::UnexpectedEof {
                needed: n - self.remaining(),
            }));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn read_i64(&mut self) -> Result<i64, BinError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<&'a str, BinError> {
        let len = self.read_u32()? as usize;
        let start = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| BinError {
            at: start,
            kind: BinErrorKind::BadUtf8,
        })
    }
}

/// Appends one byte.
pub fn write_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`-length-prefixed UTF-8 string.
///
/// # Panics
/// Panics if the string exceeds `u32::MAX` bytes.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    let len = u32::try_from(s.len()).expect("string longer than u32::MAX bytes");
    write_u32(out, len);
    out.extend_from_slice(s.as_bytes());
}

// Value tags. Deliberately the same numbering as `Value::to_raw` so the
// on-disk and in-memory tag streams read alike in a hex dump, but the
// payloads differ: `Str` is the text here, never the interner index.
const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_ID: u8 = 3;

/// Appends one [`Value`]: a tag byte followed by the variant payload.
/// Strings are written as text (see the module docs for why).
pub fn write_value(out: &mut Vec<u8>, v: Value) {
    match v {
        Value::Int(i) => {
            write_u8(out, TAG_INT);
            write_i64(out, i);
        }
        Value::Str(s) => {
            write_u8(out, TAG_STR);
            write_str(out, s.as_str());
        }
        Value::Bool(b) => {
            write_u8(out, TAG_BOOL);
            write_u8(out, u8::from(b));
        }
        Value::Id(i) => {
            write_u8(out, TAG_ID);
            write_u64(out, i);
        }
    }
}

/// Reads one [`Value`], re-interning string payloads.
pub fn read_value(r: &mut Reader<'_>) -> Result<Value, BinError> {
    let at = r.position();
    match r.read_u8()? {
        TAG_INT => Ok(Value::Int(r.read_i64()?)),
        TAG_STR => Ok(Value::str(r.read_str()?)),
        TAG_BOOL => match r.read_u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            _ => Err(BinError {
                at,
                kind: BinErrorKind::Corrupt("boolean payload not 0/1"),
            }),
        },
        TAG_ID => Ok(Value::Id(r.read_u64()?)),
        tag => Err(BinError {
            at,
            kind: BinErrorKind::BadValueTag(tag),
        }),
    }
}

/// Appends one [`Relation`]: a tracked flag (whether the store maintains
/// per-column statistics), arity, row count, then rows in insertion order.
pub fn write_relation(out: &mut Vec<u8>, rel: &Relation) {
    let tracked = rel.column_stats(0).is_some() || rel.arity() == 0;
    write_u8(out, u8::from(tracked));
    write_u32(out, u32::try_from(rel.arity()).expect("arity exceeds u32"));
    write_u64(out, rel.len() as u64);
    for row in rel.iter() {
        for v in row.iter() {
            write_value(out, v);
        }
    }
}

/// Reads one [`Relation`], rebuilding it row by row so insertion order —
/// and therefore iteration order — matches the store that was encoded.
/// A duplicate row is a structural corruption ([`write_relation`] never
/// emits one, since stores deduplicate on insert).
pub fn read_relation(r: &mut Reader<'_>) -> Result<Relation, BinError> {
    let at = r.position();
    let tracked = match r.read_u8()? {
        0 => false,
        1 => true,
        _ => {
            return Err(BinError {
                at,
                kind: BinErrorKind::Corrupt("tracked flag not 0/1"),
            })
        }
    };
    let arity = r.read_u32()? as usize;
    let rows = r.read_u64()?;
    // Reject row counts that could not possibly fit in the remaining
    // buffer (each row needs at least `arity` tag bytes, and a row of
    // arity 0 still needs the count to be 0 or 1 after dedup) before
    // attempting a huge allocation.
    let min_row_bytes = arity.max(1);
    if rows > (r.remaining() / min_row_bytes).max(1) as u64 {
        return Err(BinError {
            at,
            kind: BinErrorKind::Corrupt("row count exceeds buffer"),
        });
    }
    let mut rel = if tracked {
        Relation::new(arity)
    } else {
        Relation::new_untracked(arity)
    };
    let mut row = Vec::with_capacity(arity);
    for _ in 0..rows {
        row.clear();
        for _ in 0..arity {
            row.push(read_value(r)?);
        }
        let at = r.position();
        if !rel.insert(&row) {
            return Err(BinError {
                at,
                kind: BinErrorKind::Corrupt("duplicate row"),
            });
        }
    }
    Ok(rel)
}

/// Appends one [`Database`]: a relation count followed by `(name,
/// relation)` pairs in name order (the database's own `BTreeMap` order,
/// so encoding is deterministic).
pub fn write_database(out: &mut Vec<u8>, db: &Database) {
    let rels: Vec<_> = db.iter().collect();
    write_u32(
        out,
        u32::try_from(rels.len()).expect("relation count exceeds u32"),
    );
    for (name, rel) in rels {
        write_str(out, name);
        write_relation(out, rel);
    }
}

/// Reads one [`Database`], requiring names in strictly ascending order
/// (what [`write_database`] emits; anything else is corruption).
pub fn read_database(r: &mut Reader<'_>) -> Result<Database, BinError> {
    let count = r.read_u32()?;
    let mut rels = Vec::with_capacity(count.min(1024) as usize);
    let mut prev: Option<String> = None;
    for _ in 0..count {
        let at = r.position();
        let name = r.read_str()?.to_string();
        if prev.as_deref().is_some_and(|p| p >= name.as_str()) {
            return Err(BinError {
                at,
                kind: BinErrorKind::Corrupt("relation names out of order"),
            });
        }
        let rel = read_relation(r)?;
        prev = Some(name.clone());
        rels.push((name, rel));
    }
    Ok(Database::from_relations(rels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitive_round_trips() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 0xAB);
        write_u32(&mut buf, 0xDEAD_BEEF);
        write_u64(&mut buf, u64::MAX - 1);
        write_i64(&mut buf, -42);
        write_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_i64().unwrap(), -42);
        assert_eq!(r.read_str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn value_round_trips() {
        let values = [
            Value::Int(i64::MIN),
            Value::Int(0),
            Value::str("binio-α"),
            Value::str(""),
            Value::Bool(true),
            Value::Bool(false),
            Value::Id(u64::MAX),
        ];
        let mut buf = Vec::new();
        for v in values {
            write_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in values {
            assert_eq!(read_value(&mut r).unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn relation_round_trip_preserves_row_order() {
        let mut rel = Relation::new(2);
        rel.insert(&[Value::str("z-order"), Value::Int(1)]);
        rel.insert(&[Value::str("a-order"), Value::Int(2)]);
        rel.insert(&[Value::Int(3), Value::Id(9)]);
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel);
        let back = read_relation(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back.arity(), 2);
        assert_eq!(back.len(), rel.len());
        // Order, not just set equality.
        let rows = |r: &Relation| -> Vec<Vec<Value>> {
            r.iter().map(|row| row.iter().collect()).collect()
        };
        assert_eq!(rows(&back), rows(&rel));
        // Tracked store comes back tracked, with equal statistics.
        assert!(back.column_stats(0).is_some());
        assert_eq!(
            back.column_stats(0).unwrap().distinct_estimate(back.len()),
            rel.column_stats(0).unwrap().distinct_estimate(rel.len())
        );
    }

    #[test]
    fn untracked_relation_round_trips_untracked() {
        let mut rel = Relation::new_untracked(1);
        rel.insert(&[Value::Int(7)]);
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel);
        let back = read_relation(&mut Reader::new(&buf)).unwrap();
        assert!(back.column_stats(0).is_none());
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn database_round_trip_is_deterministic() {
        let mut db = Database::new();
        db.insert("Edge", vec![Value::Int(1), Value::Int(2)]);
        db.insert("Edge", vec![Value::Int(2), Value::Int(3)]);
        db.insert("Name", vec![Value::Int(1), Value::str("one")]);
        db.relation_mut("Empty", 3);
        let mut buf = Vec::new();
        write_database(&mut buf, &db);
        let back = read_database(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, db);
        // Empty relations survive (the durability layer depends on the
        // derived overlay carrying every intensional relation, even
        // empty ones).
        assert_eq!(back.relation("Empty").map(Relation::arity), Some(3));
        // Re-encoding the decode yields identical bytes.
        let mut buf2 = Vec::new();
        write_database(&mut buf2, &back);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn truncated_buffers_error_at_every_prefix() {
        let mut db = Database::new();
        db.insert(
            "R",
            vec![Value::str("torn"), Value::Int(-1), Value::Bool(true)],
        );
        db.insert(
            "R",
            vec![Value::str("tail"), Value::Int(2), Value::Bool(false)],
        );
        let mut buf = Vec::new();
        write_database(&mut buf, &db);
        for cut in 0..buf.len() {
            let err = read_database(&mut Reader::new(&buf[..cut]))
                .expect_err("truncated buffer must not decode");
            assert!(err.at <= cut, "error offset {} past cut {cut}", err.at);
        }
        // The full buffer still decodes.
        assert_eq!(read_database(&mut Reader::new(&buf)).unwrap(), db);
    }

    #[test]
    fn corrupt_structures_are_rejected() {
        // Bad value tag.
        let mut r = Reader::new(&[9u8]);
        assert!(matches!(
            read_value(&mut r).unwrap_err().kind,
            BinErrorKind::BadValueTag(9)
        ));
        // Bad boolean payload.
        let mut r = Reader::new(&[TAG_BOOL, 7]);
        assert!(matches!(
            read_value(&mut r).unwrap_err().kind,
            BinErrorKind::Corrupt(_)
        ));
        // Non-UTF-8 string.
        let mut buf = Vec::new();
        write_u8(&mut buf, TAG_STR);
        write_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            read_value(&mut Reader::new(&buf)).unwrap_err().kind,
            BinErrorKind::BadUtf8
        ));
        // Duplicate row.
        let mut buf = Vec::new();
        write_u8(&mut buf, 1); // tracked
        write_u32(&mut buf, 1); // arity
        write_u64(&mut buf, 2); // rows
        write_value(&mut buf, Value::Int(5));
        write_value(&mut buf, Value::Int(5));
        assert!(matches!(
            read_relation(&mut Reader::new(&buf)).unwrap_err().kind,
            BinErrorKind::Corrupt("duplicate row")
        ));
        // Absurd row count fails fast instead of allocating.
        let mut buf = Vec::new();
        write_u8(&mut buf, 1);
        write_u32(&mut buf, 2);
        write_u64(&mut buf, u64::MAX);
        assert!(matches!(
            read_relation(&mut Reader::new(&buf)).unwrap_err().kind,
            BinErrorKind::Corrupt("row count exceeds buffer")
        ));
        // Out-of-order relation names.
        let mut buf = Vec::new();
        write_u32(&mut buf, 2);
        for name in ["B", "A"] {
            write_str(&mut buf, name);
            write_relation(&mut buf, &Relation::new(0));
        }
        assert!(matches!(
            read_database(&mut Reader::new(&buf)).unwrap_err().kind,
            BinErrorKind::Corrupt("relation names out of order")
        ));
    }
}
