//! Database instances and their Datalog-fact representation (paper §3.3).
//!
//! This crate provides:
//!
//! - [`Value`]: primitive constants plus synthetic record identifiers,
//!   each decomposable into a canonical `(tag, payload)` pair
//!   ([`Value::to_raw`]);
//! - [`TupleStore`] / [`RowRef`] / [`ColumnSlices`]: columnar tuple
//!   storage in structure-of-arrays form (a tag byte-stream plus a
//!   payload word-stream per column, row-hash dedup, borrowed row and
//!   column views) with incremental per-column statistics
//!   ([`ColumnStats`]) and a SIMD constant-filter kernel
//!   ([`TupleStore::filter_const_rows`]);
//! - [`Database`] / [`Relation`]: named, insertion-ordered, deduplicated
//!   tuple stores shared with the Datalog engine — `Relation` is the
//!   columnar [`TupleStore`];
//! - [`Instance`] / [`Record`]: nested record forests covering relational,
//!   document, and graph databases uniformly;
//! - [`to_facts`] / [`from_facts`]: the instance ⇄ fact translation of
//!   §3.3, including the `BuildRecord` parent-chasing procedure;
//! - [`Instance::flatten`]: a canonical, id-free flattening used to compare
//!   instances and to drive MDP analysis.
//!
//! For how this crate fits the rest of the workspace (crate DAG, data
//! flow, a diagram of the tag/payload column streams) see
//! `ARCHITECTURE.md` at the repository root.
//!
//! ```
//! use dynamite_schema::Schema;
//! use dynamite_instance::{Instance, Record, Value, to_facts, from_facts};
//! use std::sync::Arc;
//!
//! let schema = Arc::new(
//!     Schema::parse(
//!         "@document
//!          Univ { id: Int, name: String, Admit { uid: Int, count: Int } }",
//!     )
//!     .unwrap(),
//! );
//! let mut inst = Instance::new(schema.clone());
//! inst.insert(
//!     "Univ",
//!     Record::with_fields(vec![
//!         Value::from(1).into(),
//!         Value::from("U1").into(),
//!         vec![
//!             Record::from_values(vec![1.into(), 10.into()]),
//!             Record::from_values(vec![2.into(), 50.into()]),
//!         ]
//!         .into(),
//!     ]),
//! )
//! .unwrap();
//!
//! let facts = to_facts(&inst);
//! assert_eq!(facts.relation("Univ").unwrap().len(), 1);
//! assert_eq!(facts.relation("Admit").unwrap().len(), 2);
//!
//! let back = from_facts(&facts, schema).unwrap();
//! assert!(inst.canon_eq(&back));
//! ```

pub mod binio;
mod database;
mod facts;
mod flatten;
pub mod hash;
mod intern;
mod json;
mod record;
mod stats;
mod tuple_store;
mod value;

pub use database::{ColumnIndex, Database, Relation};
pub use facts::{
    from_facts, parse_facts, parse_facts_files, to_facts, FactsError, FactsParseError, IdGen,
};
pub use flatten::{FlatTable, Flattened};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use intern::Symbol;
pub use json::{parse_document, write_document, JsonError};
pub use record::{Field, Instance, InstanceError, Record};
pub use stats::ColumnStats;
pub use tuple_store::{ColumnSlices, RowRef, TupleStore};
pub use value::Value;
