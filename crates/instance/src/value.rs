use std::fmt;

use crate::intern::Symbol;

/// A Datalog constant / primitive field value.
///
/// Synthetic record identifiers ([`Value::Id`]) are generated during the
/// instance→facts translation (§3.3) and deliberately form a type of their
/// own so that they can never collide with integer data.
///
/// Strings are interned ([`Symbol`]): every `Value` is a `Copy` word pair,
/// so tuples compare and hash without touching string bytes — the property
/// the evaluator's join keys and deduplication sets rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// An interned UTF-8 string.
    Str(Symbol),
    /// A boolean.
    Bool(bool),
    /// A synthetic record identifier (`Id(r)` in §3.3).
    Id(u64),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Symbol::intern(s.as_ref()))
    }

    /// Returns the inner string if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the inner integer if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns `true` for synthetic identifiers.
    pub fn is_id(&self) -> bool {
        matches!(self, Value::Id(_))
    }

    /// The primitive type of this value, if it is primitive data
    /// (identifiers have no primitive type).
    pub fn prim_type(&self) -> Option<dynamite_schema::PrimType> {
        use dynamite_schema::PrimType;
        match self {
            Value::Int(_) => Some(PrimType::Int),
            Value::Str(_) => Some(PrimType::Str),
            Value::Bool(_) => Some(PrimType::Bool),
            Value::Id(_) => None,
        }
    }

    /// The canonical `(tag, payload)` decomposition of this value — the
    /// unit of the structure-of-arrays column layout
    /// ([`ColumnSlices`](crate::ColumnSlices)): the tag is the variant
    /// (0 = `Int`, 1 = `Str`, 2 = `Bool`, 3 = `Id`), the payload the
    /// variant's canonical 64-bit pattern. Two values are equal **iff**
    /// their tags and payloads are both equal, and both comparisons are
    /// plain integer compares — no discriminant branch, no string
    /// resolution — which is what lets the columnar filter kernel
    /// ([`TupleStore::filter_const_rows`](crate::TupleStore::filter_const_rows))
    /// sweep the payload word stream as vectorizable code.
    #[inline(always)]
    pub fn to_raw(self) -> (u8, u64) {
        match self {
            Value::Int(i) => (0, i as u64),
            Value::Str(s) => (1, u64::from(s.index())),
            Value::Bool(b) => (2, u64::from(b)),
            Value::Id(i) => (3, i),
        }
    }

    /// Reassembles a value from a [`Value::to_raw`] decomposition.
    ///
    /// Crate-internal on purpose: the pair must originate from a real
    /// value (a garbage string payload would produce a [`Symbol`] with no
    /// intern-table entry behind it), and the columnar store only ever
    /// stores pairs produced by `to_raw`.
    #[inline(always)]
    pub(crate) fn from_raw(tag: u8, payload: u64) -> Value {
        match tag {
            0 => Value::Int(payload as i64),
            1 => Value::Str(Symbol::from_index(payload as u32)),
            2 => Value::Bool(payload != 0),
            3 => Value::Id(payload),
            _ => unreachable!("invalid value tag {tag}"),
        }
    }

    /// The canonical bit pattern of this value: [`Value::to_raw`]'s tag in
    /// the high word, its payload in the low word. Two values are equal
    /// **iff** their bit patterns are equal — the property the statistics
    /// layer ([`ColumnStats`](crate::ColumnStats)) relies on.
    ///
    /// The *ordering* of bit patterns is a total order consistent with
    /// equality but deliberately **not** [`Value`]'s semantic `Ord`
    /// (interned strings order by table index here, integers by raw
    /// two's-complement bits): it is only suitable for membership
    /// pruning and hashing, never for user-visible sorting.
    #[inline(always)]
    pub fn to_bits(self) -> u128 {
        let (tag, payload) = self.to_raw();
        (u128::from(tag) << 64) | u128::from(payload)
    }

    /// Like [`Value::to_bits`], but **stable across processes**: the `Str`
    /// payload is the content-derived [`Symbol::stable_hash`] instead of
    /// the process-local intern index. Equal values always map to equal
    /// patterns; distinct strings may collide (hash), so this pattern is
    /// *one-sided* — suitable for conservative membership pruning and
    /// sketching ([`ColumnStats`](crate::ColumnStats)), where a collision
    /// only weakens an estimate, and required wherever the derived
    /// quantity must be identical in every process (the planner's join
    /// orders, hence durable recovery's bit-identical replay).
    #[inline(always)]
    pub fn to_stable_bits(self) -> u128 {
        match self {
            Value::Str(s) => (1u128 << 64) | u128::from(s.stable_hash()),
            other => other.to_bits(),
        }
    }

    /// Variant rank used to keep the `Ord` impl aligned with the historic
    /// derive order (`Int < Str < Bool < Id`).
    fn rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Str(_) => 1,
            Value::Bool(_) => 2,
            Value::Id(_) => 3,
        }
    }
}

// Ordering is implemented by hand because interned symbols order by table
// index, while `Value` ordering must stay observable-equivalent to the
// previous `Str(Arc<str>)` representation (lexicographic on the string).
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> std::cmp::Ordering {
        self.rank()
            .cmp(&other.rank())
            .then_with(|| match (self, other) {
                (Value::Int(a), Value::Int(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Id(a), Value::Id(b)) => a.cmp(b),
                _ => unreachable!("equal ranks imply equal variants"),
            })
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{:?}", s.as_str()),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Id(i) => write!(f, "#{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3).as_int(), Some(3));
        assert_eq!(Value::str("x").as_str(), Some("x"));
    }

    #[test]
    fn ids_are_distinct_from_ints() {
        assert_ne!(Value::Id(3), Value::Int(3));
        assert!(Value::Id(3).is_id());
        assert!(!Value::Int(3).is_id());
        assert_eq!(Value::Id(3).prim_type(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Id(7).to_string(), "#7");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn ordering_matches_pre_interning_semantics() {
        // Within strings: lexicographic, regardless of intern order.
        let z = Value::str("z-value-ord");
        let a = Value::str("a-value-ord");
        assert!(a < z);
        // Across variants: Int < Str < Bool < Id (historic derive order).
        assert!(Value::Int(i64::MAX) < Value::str("a"));
        assert!(Value::str("z") < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Id(0));
    }

    #[test]
    fn bit_patterns_agree_with_equality() {
        let values = [
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::str("bits-a"),
            Value::str("bits-b"),
            Value::Bool(false),
            Value::Bool(true),
            Value::Id(0),
            Value::Id(u64::MAX),
        ];
        for a in values {
            for b in values {
                assert_eq!(a == b, a.to_bits() == b.to_bits(), "{a} vs {b}");
            }
        }
        // Cross-variant payload collisions stay distinct via the tag word.
        assert_ne!(Value::Int(3).to_bits(), Value::Id(3).to_bits());
        assert_ne!(Value::Bool(true).to_bits(), Value::Int(1).to_bits());
    }

    #[test]
    fn stable_bits_agree_with_equality_and_ignore_intern_order() {
        let values = [
            Value::Int(-1),
            Value::str("stable-bits-a"),
            Value::str("stable-bits-b"),
            Value::Bool(true),
            Value::Id(9),
        ];
        for a in values {
            for b in values {
                assert_eq!(
                    a == b,
                    a.to_stable_bits() == b.to_stable_bits(),
                    "{a} vs {b}"
                );
            }
        }
        // Non-string variants: stable bits are exactly the canonical bits.
        assert_eq!(Value::Int(-1).to_stable_bits(), Value::Int(-1).to_bits());
        assert_eq!(Value::Id(9).to_stable_bits(), Value::Id(9).to_bits());
        // Strings keep the Str tag word (cross-variant disjointness).
        assert_eq!(Value::str("x").to_stable_bits() >> 64, 1);
    }

    #[test]
    fn interned_equality_is_string_equality() {
        assert_eq!(Value::str(String::from("dup")), Value::str("dup"));
        assert_ne!(Value::str("dup"), Value::str("dup2"));
    }
}
