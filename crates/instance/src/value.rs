use std::fmt;
use std::sync::Arc;

/// A Datalog constant / primitive field value.
///
/// Synthetic record identifiers ([`Value::Id`]) are generated during the
/// instance→facts translation (§3.3) and deliberately form a type of their
/// own so that they can never collide with integer data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A UTF-8 string (cheaply clonable).
    Str(Arc<str>),
    /// A boolean.
    Bool(bool),
    /// A synthetic record identifier (`Id(r)` in §3.3).
    Id(u64),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the inner string if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the inner integer if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns `true` for synthetic identifiers.
    pub fn is_id(&self) -> bool {
        matches!(self, Value::Id(_))
    }

    /// The primitive type of this value, if it is primitive data
    /// (identifiers have no primitive type).
    pub fn prim_type(&self) -> Option<dynamite_schema::PrimType> {
        use dynamite_schema::PrimType;
        match self {
            Value::Int(_) => Some(PrimType::Int),
            Value::Str(_) => Some(PrimType::Str),
            Value::Bool(_) => Some(PrimType::Bool),
            Value::Id(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Id(i) => write!(f, "#{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3).as_int(), Some(3));
        assert_eq!(Value::str("x").as_str(), Some("x"));
    }

    #[test]
    fn ids_are_distinct_from_ints() {
        assert_ne!(Value::Id(3), Value::Int(3));
        assert!(Value::Id(3).is_id());
        assert!(!Value::Int(3).is_id());
        assert_eq!(Value::Id(3).prim_type(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Id(7).to_string(), "#7");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
