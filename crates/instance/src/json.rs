//! A minimal JSON reader/writer for document instances.
//!
//! Built in-crate (no serde) per the workspace's "implement everything"
//! rule; supports exactly the JSON subset the schema formalism needs:
//! objects, arrays, strings (with the standard escapes), 64-bit integers,
//! and booleans. The toplevel document maps record type names to arrays of
//! record objects:
//!
//! ```json
//! { "Univ": [ { "id": 1, "name": "U1", "Admit": [ {"uid": 1, "count": 10} ] } ] }
//! ```

use std::fmt;
use std::sync::Arc;

use dynamite_schema::Schema;

use crate::record::{Field, Instance, Record};
use crate::value::Value;

/// Errors raised while reading document instances from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Lexical or structural JSON error with byte offset.
    Syntax { message: String, offset: usize },
    /// The document does not fit the schema (unknown record/attribute,
    /// wrong value type, missing attribute).
    Schema(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { message, offset } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::Schema(m) => write!(f, "JSON does not match schema: {m}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document into an [`Instance`] of `schema`.
pub fn parse_document(input: &str, schema: Arc<Schema>) -> Result<Instance, JsonError> {
    let mut p = Lexer {
        src: input.as_bytes(),
        pos: 0,
    };
    let mut instance = Instance::new(schema.clone());
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    if p.peek() != Some(b'}') {
        loop {
            let name = p.string()?;
            if !schema.is_record(&name) || schema.is_nested(&name) {
                return Err(JsonError::Schema(format!(
                    "`{name}` is not a top-level record type"
                )));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            p.expect(b'[')?;
            p.skip_ws();
            if p.peek() != Some(b']') {
                loop {
                    let record = parse_record(&mut p, &schema, &name)?;
                    instance
                        .insert(&name, record)
                        .map_err(|e| JsonError::Schema(e.to_string()))?;
                    p.skip_ws();
                    if !p.eat(b',') {
                        break;
                    }
                    p.skip_ws();
                }
            }
            p.expect(b']')?;
            p.skip_ws();
            if !p.eat(b',') {
                break;
            }
            p.skip_ws();
        }
    }
    p.expect(b'}')?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after document"));
    }
    Ok(instance)
}

fn parse_record(p: &mut Lexer, schema: &Schema, record_type: &str) -> Result<Record, JsonError> {
    p.skip_ws();
    p.expect(b'{')?;
    let attrs = schema.attrs(record_type);
    let mut fields: Vec<Option<Field>> = vec![None; attrs.len()];
    p.skip_ws();
    if p.peek() != Some(b'}') {
        loop {
            let key = p.string()?;
            let idx = attrs.iter().position(|a| *a == key).ok_or_else(|| {
                JsonError::Schema(format!("record `{record_type}` has no attribute `{key}`"))
            })?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let field = if schema.is_record(&key) {
                p.expect(b'[')?;
                let mut children = Vec::new();
                p.skip_ws();
                if p.peek() != Some(b']') {
                    loop {
                        children.push(parse_record(p, schema, &key)?);
                        p.skip_ws();
                        if !p.eat(b',') {
                            break;
                        }
                        p.skip_ws();
                    }
                }
                p.expect(b']')?;
                Field::Children(children)
            } else {
                Field::Prim(p.value()?)
            };
            if fields[idx].is_some() {
                return Err(JsonError::Schema(format!(
                    "record `{record_type}` sets attribute `{key}` twice"
                )));
            }
            fields[idx] = Some(field);
            p.skip_ws();
            if !p.eat(b',') {
                break;
            }
            p.skip_ws();
        }
    }
    p.expect(b'}')?;
    let fields = fields
        .into_iter()
        .zip(attrs)
        .map(|(f, a)| {
            f.ok_or_else(|| {
                JsonError::Schema(format!("record `{record_type}` is missing attribute `{a}`"))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Record::with_fields(fields))
}

/// Renders an [`Instance`] as pretty-printed JSON in the same toplevel
/// layout [`parse_document`] reads.
pub fn write_document(instance: &Instance) -> String {
    let schema = instance.schema();
    let mut out = String::from("{\n");
    let mut first_type = true;
    for (record_type, records) in instance.iter() {
        if !first_type {
            out.push_str(",\n");
        }
        first_type = false;
        out.push_str(&format!("  {:?}: [", record_type));
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            write_record(schema, record_type, r, 2, &mut out);
        }
        if !records.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push(']');
    }
    out.push_str("\n}\n");
    out
}

fn write_record(schema: &Schema, record_type: &str, r: &Record, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str(&pad);
    out.push('{');
    let mut first = true;
    for (attr, field) in schema.attrs(record_type).iter().zip(r.fields()) {
        if !first {
            out.push_str(", ");
        }
        first = false;
        match field {
            Field::Prim(v) => match v {
                Value::Str(s) => out.push_str(&format!("{attr:?}: {:?}", s.as_str())),
                other => out.push_str(&format!("{attr:?}: {other}")),
            },
            Field::Children(children) => {
                out.push_str(&format!("{attr:?}: ["));
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    write_record(schema, attr, c, indent + 1, out);
                }
                if !children.is_empty() {
                    out.push('\n');
                    out.push_str(&pad);
                }
                out.push(']');
            }
        }
    }
    out.push('}');
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::Syntax {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.skip_ws();
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.src[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().expect("nonempty");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::str(self.string()?)),
            Some(b't') => {
                self.keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.pos += 1;
                }
                if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
                    return Err(self.err("floating-point numbers are not supported"));
                }
                let text =
                    std::str::from_utf8(&self.src[start..self.pos]).expect("digits are ASCII");
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| self.err("integer out of range"))
            }
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.src[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamite_schema::Schema;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::parse(
                "@document
                 Univ { id: Int, name: String, Admit { uid: Int, count: Int } }",
            )
            .unwrap(),
        )
    }

    const DOC: &str = r#"{
      "Univ": [
        { "id": 1, "name": "U1", "Admit": [ {"uid": 1, "count": 10}, {"uid": 2, "count": 50} ] },
        { "id": 2, "name": "U2", "Admit": [ {"uid": 2, "count": 20}, {"uid": 1, "count": 40} ] }
      ]
    }"#;

    #[test]
    fn parses_figure2_input() {
        let inst = parse_document(DOC, schema()).unwrap();
        assert_eq!(inst.records("Univ").len(), 2);
        assert_eq!(inst.num_records(), 6);
        assert_eq!(inst.records("Univ")[0].prim(1), Some(&Value::str("U1")));
    }

    #[test]
    fn round_trip() {
        let inst = parse_document(DOC, schema()).unwrap();
        let text = write_document(&inst);
        let again = parse_document(&text, schema()).unwrap();
        assert!(inst.canon_eq(&again));
    }

    #[test]
    fn out_of_order_keys_ok() {
        let doc = r#"{"Univ": [ {"name": "U1", "Admit": [], "id": 1} ]}"#;
        let inst = parse_document(doc, schema()).unwrap();
        assert_eq!(inst.records("Univ")[0].prim(0), Some(&Value::Int(1)));
    }

    #[test]
    fn missing_attribute_rejected() {
        let doc = r#"{"Univ": [ {"id": 1, "Admit": []} ]}"#;
        let err = parse_document(doc, schema()).unwrap_err();
        assert!(matches!(err, JsonError::Schema(_)));
    }

    #[test]
    fn unknown_record_type_rejected() {
        let doc = r#"{"College": []}"#;
        let err = parse_document(doc, schema()).unwrap_err();
        assert!(matches!(err, JsonError::Schema(_)));
    }

    #[test]
    fn floats_rejected() {
        let doc = r#"{"Univ": [ {"id": 1.5, "name": "U", "Admit": []} ]}"#;
        let err = parse_document(doc, schema()).unwrap_err();
        assert!(matches!(err, JsonError::Syntax { .. }));
    }

    #[test]
    fn string_escapes() {
        let doc = r#"{"Univ": [ {"id": 1, "name": "a\"bA\n", "Admit": []} ]}"#;
        let inst = parse_document(doc, schema()).unwrap();
        assert_eq!(
            inst.records("Univ")[0].prim(1),
            Some(&Value::str("a\"bA\n"))
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let doc = r#"{"Univ": []} extra"#;
        assert!(parse_document(doc, schema()).is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        // Previously the second value silently overwrote the first.
        let doc = r#"{"Univ": [ {"id": 1, "id": 2, "name": "U", "Admit": []} ]}"#;
        let err = parse_document(doc, schema()).unwrap_err();
        assert!(matches!(err, JsonError::Schema(m) if m.contains("twice")));
    }

    #[test]
    fn truncated_document_is_a_syntax_error_not_a_panic() {
        for doc in [
            "",
            "{",
            r#"{"Univ""#,
            r#"{"Univ": ["#,
            r#"{"Univ": [ {"id": 1, "name": "U1", "Admit": ["#,
            r#"{"Univ": [ {"id": 1, "name": "unterminated"#,
            r#"{"Univ": [ {"id": 1, "name": "bad \u12"#,
        ] {
            let err = parse_document(doc, schema()).unwrap_err();
            assert!(matches!(err, JsonError::Syntax { .. }), "doc: {doc:?}");
        }
    }
}
