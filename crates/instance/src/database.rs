use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashSet};

use crate::hash::FxHashMap;
use std::fmt;

use crate::tuple_store::TupleStore;
use crate::value::Value;

/// A set of tuples of fixed arity with insertion-ordered, deduplicated
/// iteration. This is both the extensional input and the intensional output
/// format of the Datalog engine.
///
/// `Relation` is a semantic alias for the columnar [`TupleStore`]: the
/// storage layer (structure-of-arrays tag/payload streams per column,
/// row-hash dedup, borrowed [`RowRef`](crate::RowRef) row views) lives in
/// [`tuple_store`](crate::TupleStore), while this module layers the
/// database vocabulary — named relations, join indexes — on top of it.
pub type Relation = TupleStore;

/// A collection of named relations: the uniform format for Datalog inputs
/// (extensional facts) and outputs (intensional facts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Builds a database directly from named relations (no per-tuple
    /// re-hashing; later duplicates of a name replace earlier ones).
    pub fn from_relations(relations: impl IntoIterator<Item = (String, Relation)>) -> Database {
        Database {
            relations: relations.into_iter().collect(),
        }
    }

    /// Ensures relation `name` exists with the given arity and returns a
    /// mutable reference to it.
    ///
    /// # Panics
    /// Panics if the relation exists with a different arity.
    pub fn relation_mut(&mut self, name: &str, arity: usize) -> &mut Relation {
        match self.relations.entry(name.to_string()) {
            std::collections::btree_map::Entry::Occupied(e) => {
                let r = e.into_mut();
                assert_eq!(r.arity(), arity, "relation `{name}` arity mismatch");
                r
            }
            std::collections::btree_map::Entry::Vacant(e) => e.insert(Relation::new(arity)),
        }
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Inserts a fact `name(values…)`, creating the relation on demand.
    pub fn insert(&mut self, name: &str, values: Vec<Value>) -> bool {
        let arity = values.len();
        self.relation_mut(name, arity).insert(&values)
    }

    /// Bulk-inserts rows into relation `name` (created on demand with the
    /// given arity) — the columnar loading path for dataset builders.
    pub fn extend_rows<I>(&mut self, name: &str, arity: usize, rows: I)
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        self.relation_mut(name, arity).extend_rows(rows);
    }

    /// Iterates `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Consumes the database into its named relations, in name order —
    /// the inverse of [`Database::from_relations`].
    pub fn into_relations(self) -> impl Iterator<Item = (String, Relation)> {
        self.relations.into_iter()
    }

    /// Relation names in name order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Total number of facts across all relations.
    pub fn num_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Merges another database into this one (set union per relation).
    pub fn merge(&mut self, other: &Database) {
        for (name, rel) in other.iter() {
            let dst = self.relation_mut(name, rel.arity());
            for t in rel.iter() {
                dst.insert_row(t);
            }
        }
    }

    /// Restricts to the named relations (used to slice synthesis outputs).
    pub fn restrict_to(&self, names: &HashSet<&str>) -> Database {
        Database {
            relations: self
                .relations
                .iter()
                .filter(|(n, _)| names.contains(n.as_str()))
                .map(|(n, r)| (n.clone(), r.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            for t in rel.iter() {
                write!(f, "{name}(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                writeln!(f, ").")?;
            }
        }
        Ok(())
    }
}

/// A hash index from key columns to tuple positions, used by the Datalog
/// evaluator for joins and by `BuildRecord` for parent-id lookup (this is
/// the in-memory substitute for the paper's MongoDB index, §5).
#[derive(Debug, Default)]
pub struct ColumnIndex {
    map: FxHashMap<Vec<Value>, Vec<usize>>,
}

impl ColumnIndex {
    /// Builds an index of `rel` on the given key columns.
    ///
    /// With columnar storage this is a contiguous sweep over the key
    /// columns' tag/payload streams
    /// ([`ColumnSlices`](crate::ColumnSlices)) — no per-tuple pointer
    /// chase; values reassemble from their pairs as they are gathered.
    pub fn build(rel: &Relation, cols: &[usize]) -> ColumnIndex {
        // Callers may index a stand-in empty relation whose arity does not
        // cover `cols` (missing EDB relations are treated as empty).
        if rel.is_empty() {
            return ColumnIndex::default();
        }
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        match cols {
            // Single-column fast path: one stream pair, one value per key.
            [c] => {
                for (i, v) in rel.column(*c).iter().enumerate() {
                    match map.entry(vec![v]) {
                        Entry::Occupied(mut e) => e.get_mut().push(i),
                        Entry::Vacant(e) => {
                            e.insert(vec![i]);
                        }
                    }
                }
            }
            _ => {
                let slices: Vec<_> = cols.iter().map(|&c| rel.column(c)).collect();
                for i in 0..rel.len() {
                    let key: Vec<Value> = slices.iter().map(|s| s.value(i)).collect();
                    match map.entry(key) {
                        Entry::Occupied(mut e) => e.get_mut().push(i),
                        Entry::Vacant(e) => {
                            e.insert(vec![i]);
                        }
                    }
                }
            }
        }
        ColumnIndex { map }
    }

    /// Tuple positions whose key columns equal `key`.
    pub fn get(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn relation_dedupes_and_keeps_order() {
        let mut r = Relation::new(2);
        assert!(r.insert(&t(&[1, 2])));
        assert!(r.insert(&t(&[3, 4])));
        assert!(!r.insert(&t(&[1, 2])));
        assert_eq!(r.len(), 2);
        let rows: Vec<_> = r.iter().map(|x| x.at(0)).collect();
        assert_eq!(rows, vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(&t(&[1]));
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = Relation::new(1);
        a.insert(&t(&[1]));
        a.insert(&t(&[2]));
        let mut b = Relation::new(1);
        b.insert(&t(&[2]));
        b.insert(&t(&[1]));
        assert_eq!(a, b);
    }

    #[test]
    fn projection() {
        let mut r = Relation::new(3);
        r.insert(&t(&[1, 2, 3]));
        r.insert(&t(&[1, 5, 3]));
        let p = r.project(&[0, 2]);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&t(&[1, 3])));
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        db.insert("R", t(&[1, 2]));
        db.insert("R", t(&[1, 2]));
        db.insert("S", t(&[7]));
        assert_eq!(db.num_facts(), 2);
        assert_eq!(db.relation("R").unwrap().len(), 1);
        assert_eq!(db.names().collect::<Vec<_>>(), vec!["R", "S"]);
    }

    #[test]
    fn column_index_lookup() {
        let mut r = Relation::new(2);
        r.insert(&t(&[1, 10]));
        r.insert(&t(&[1, 20]));
        r.insert(&t(&[2, 30]));
        let idx = ColumnIndex::build(&r, &[0]);
        assert_eq!(idx.get(&t(&[1])).len(), 2);
        assert_eq!(idx.get(&t(&[2])).len(), 1);
        assert_eq!(idx.get(&t(&[9])).len(), 0);
    }

    #[test]
    fn multi_column_index_lookup() {
        let mut r = Relation::new(3);
        r.insert(&t(&[1, 10, 5]));
        r.insert(&t(&[1, 10, 6]));
        r.insert(&t(&[1, 20, 7]));
        let idx = ColumnIndex::build(&r, &[0, 1]);
        assert_eq!(idx.get(&t(&[1, 10])), &[0, 1]);
        assert_eq!(idx.get(&t(&[1, 20])), &[2]);
    }

    #[test]
    fn bulk_extend_rows() {
        let mut db = Database::new();
        db.extend_rows("R", 2, (0..5i64).map(|i| t(&[i, i * 10])));
        db.extend_rows("R", 2, [t(&[0, 0]), t(&[9, 9])]);
        // (0, 0) is a duplicate of the first batch's row.
        assert_eq!(db.relation("R").unwrap().len(), 6);
    }

    #[test]
    fn merge_unions() {
        let mut a = Database::new();
        a.insert("R", t(&[1]));
        let mut b = Database::new();
        b.insert("R", t(&[1]));
        b.insert("R", t(&[2]));
        a.merge(&b);
        assert_eq!(a.relation("R").unwrap().len(), 2);
    }
}
