use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashSet};

use crate::hash::{FxHashMap, FxHashSet};
use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// A tuple of constants. `Arc` makes tuples cheap to share between the
/// deduplication set, the insertion-ordered list, and join indices.
pub type Tuple = Arc<[Value]>;

/// A set of tuples of fixed arity with insertion-ordered, deduplicated
/// iteration. This is both the extensional input and the intensional output
/// format of the Datalog engine.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    set: FxHashSet<Tuple>,
    order: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            set: FxHashSet::default(),
            order: Vec::new(),
        }
    }

    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple's arity does not match the relation's.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.len(),
            self.arity
        );
        if self.set.insert(tuple.clone()) {
            self.order.push(tuple);
            true
        } else {
            false
        }
    }

    /// Inserts a tuple built from a vector of values.
    pub fn insert_values(&mut self, values: Vec<Value>) -> bool {
        self.insert(Arc::from(values))
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.set.contains(tuple)
    }

    /// Iterates tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.order.iter()
    }

    /// The `i`-th tuple in insertion order.
    pub fn get(&self, i: usize) -> Option<&Tuple> {
        self.order.get(i)
    }

    /// Set equality (ignores insertion order).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.set == other.set
    }

    /// Returns the set of distinct values appearing in column `col`.
    pub fn column_values(&self, col: usize) -> HashSet<&Value> {
        self.order.iter().map(|t| &t[col]).collect()
    }

    /// Projects onto the given columns, returning the set of projected rows.
    pub fn project(&self, cols: &[usize]) -> HashSet<Vec<Value>> {
        self.order
            .iter()
            .map(|t| cols.iter().map(|&c| t[c]).collect())
            .collect()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for Relation {}

impl FromIterator<Vec<Value>> for Relation {
    fn from_iter<I: IntoIterator<Item = Vec<Value>>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, Vec::len);
        let mut rel = Relation::new(arity);
        for t in it {
            rel.insert_values(t);
        }
        rel
    }
}

/// A collection of named relations: the uniform format for Datalog inputs
/// (extensional facts) and outputs (intensional facts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Builds a database directly from named relations (no per-tuple
    /// re-hashing; later duplicates of a name replace earlier ones).
    pub fn from_relations(relations: impl IntoIterator<Item = (String, Relation)>) -> Database {
        Database {
            relations: relations.into_iter().collect(),
        }
    }

    /// Ensures relation `name` exists with the given arity and returns a
    /// mutable reference to it.
    ///
    /// # Panics
    /// Panics if the relation exists with a different arity.
    pub fn relation_mut(&mut self, name: &str, arity: usize) -> &mut Relation {
        match self.relations.entry(name.to_string()) {
            std::collections::btree_map::Entry::Occupied(e) => {
                let r = e.into_mut();
                assert_eq!(r.arity(), arity, "relation `{name}` arity mismatch");
                r
            }
            std::collections::btree_map::Entry::Vacant(e) => e.insert(Relation::new(arity)),
        }
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Inserts a fact `name(values…)`, creating the relation on demand.
    pub fn insert(&mut self, name: &str, values: Vec<Value>) -> bool {
        let arity = values.len();
        self.relation_mut(name, arity).insert_values(values)
    }

    /// Iterates `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Relation names in name order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Total number of facts across all relations.
    pub fn num_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Merges another database into this one (set union per relation).
    pub fn merge(&mut self, other: &Database) {
        for (name, rel) in other.iter() {
            let dst = self.relation_mut(name, rel.arity());
            for t in rel.iter() {
                dst.insert(t.clone());
            }
        }
    }

    /// Restricts to the named relations (used to slice synthesis outputs).
    pub fn restrict_to(&self, names: &HashSet<&str>) -> Database {
        Database {
            relations: self
                .relations
                .iter()
                .filter(|(n, _)| names.contains(n.as_str()))
                .map(|(n, r)| (n.clone(), r.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            for t in rel.iter() {
                write!(f, "{name}(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                writeln!(f, ").")?;
            }
        }
        Ok(())
    }
}

/// A hash index from key columns to tuple positions, used by the Datalog
/// evaluator for joins and by `BuildRecord` for parent-id lookup (this is
/// the in-memory substitute for the paper's MongoDB index, §5).
#[derive(Debug, Default)]
pub struct ColumnIndex {
    map: FxHashMap<Vec<Value>, Vec<usize>>,
}

impl ColumnIndex {
    /// Builds an index of `rel` on the given key columns.
    pub fn build(rel: &Relation, cols: &[usize]) -> ColumnIndex {
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for (i, t) in rel.iter().enumerate() {
            let key: Vec<Value> = cols.iter().map(|&c| t[c]).collect();
            match map.entry(key) {
                Entry::Occupied(mut e) => e.get_mut().push(i),
                Entry::Vacant(e) => {
                    e.insert(vec![i]);
                }
            }
        }
        ColumnIndex { map }
    }

    /// Tuple positions whose key columns equal `key`.
    pub fn get(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn relation_dedupes_and_keeps_order() {
        let mut r = Relation::new(2);
        assert!(r.insert_values(t(&[1, 2])));
        assert!(r.insert_values(t(&[3, 4])));
        assert!(!r.insert_values(t(&[1, 2])));
        assert_eq!(r.len(), 2);
        let rows: Vec<_> = r.iter().map(|x| x[0]).collect();
        assert_eq!(rows, vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert_values(t(&[1]));
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = Relation::new(1);
        a.insert_values(t(&[1]));
        a.insert_values(t(&[2]));
        let mut b = Relation::new(1);
        b.insert_values(t(&[2]));
        b.insert_values(t(&[1]));
        assert_eq!(a, b);
    }

    #[test]
    fn projection() {
        let mut r = Relation::new(3);
        r.insert_values(t(&[1, 2, 3]));
        r.insert_values(t(&[1, 5, 3]));
        let p = r.project(&[0, 2]);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&t(&[1, 3])));
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        db.insert("R", t(&[1, 2]));
        db.insert("R", t(&[1, 2]));
        db.insert("S", t(&[7]));
        assert_eq!(db.num_facts(), 2);
        assert_eq!(db.relation("R").unwrap().len(), 1);
        assert_eq!(db.names().collect::<Vec<_>>(), vec!["R", "S"]);
    }

    #[test]
    fn column_index_lookup() {
        let mut r = Relation::new(2);
        r.insert_values(t(&[1, 10]));
        r.insert_values(t(&[1, 20]));
        r.insert_values(t(&[2, 30]));
        let idx = ColumnIndex::build(&r, &[0]);
        assert_eq!(idx.get(&t(&[1])).len(), 2);
        assert_eq!(idx.get(&t(&[2])).len(), 1);
        assert_eq!(idx.get(&t(&[9])).len(), 0);
    }

    #[test]
    fn merge_unions() {
        let mut a = Database::new();
        a.insert("R", t(&[1]));
        let mut b = Database::new();
        b.insert("R", t(&[1]));
        b.insert("R", t(&[2]));
        a.merge(&b);
        assert_eq!(a.relation("R").unwrap().len(), 2);
    }
}
