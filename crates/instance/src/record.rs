use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use dynamite_schema::{Schema, TypeDef};

use crate::value::Value;

/// One field of a record: a primitive value or the list of nested child
/// records for a record-typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    /// A primitive value.
    Prim(Value),
    /// Instances of a nested record type.
    Children(Vec<Record>),
}

impl From<Value> for Field {
    fn from(v: Value) -> Field {
        Field::Prim(v)
    }
}

impl From<Vec<Record>> for Field {
    fn from(rs: Vec<Record>) -> Field {
        Field::Children(rs)
    }
}

/// A record instance: field values in the schema's attribute order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    fields: Vec<Field>,
}

impl Record {
    /// Builds a record from explicit fields (attribute order of the schema).
    pub fn with_fields(fields: Vec<Field>) -> Record {
        Record { fields }
    }

    /// Builds a flat record from primitive values only.
    pub fn from_values(values: Vec<Value>) -> Record {
        Record {
            fields: values.into_iter().map(Field::Prim).collect(),
        }
    }

    /// The fields in attribute order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The `i`-th field.
    pub fn field(&self, i: usize) -> Option<&Field> {
        self.fields.get(i)
    }

    /// The `i`-th field as a primitive value.
    pub fn prim(&self, i: usize) -> Option<&Value> {
        match self.fields.get(i) {
            Some(Field::Prim(v)) => Some(v),
            _ => None,
        }
    }

    /// The `i`-th field as nested children.
    pub fn children(&self, i: usize) -> Option<&[Record]> {
        match self.fields.get(i) {
            Some(Field::Children(c)) => Some(c),
            _ => None,
        }
    }
}

/// Errors raised when inserting records that do not match the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// The record type is not a top-level record of the schema.
    UnknownRecordType(String),
    /// The record has the wrong number of fields for its type.
    FieldCount {
        record: String,
        expected: usize,
        got: usize,
    },
    /// A field holds the wrong shape (primitive vs. children) or a value of
    /// the wrong primitive type.
    FieldType { record: String, attr: String },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::UnknownRecordType(n) => {
                write!(f, "`{n}` is not a top-level record type of the schema")
            }
            InstanceError::FieldCount {
                record,
                expected,
                got,
            } => write!(f, "record `{record}` expects {expected} fields, got {got}"),
            InstanceError::FieldType { record, attr } => {
                write!(f, "field `{attr}` of record `{record}` has the wrong type")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A database instance: for each top-level record type, a list of records.
///
/// Relational tables, JSON document collections, and graph node/edge tables
/// are all represented this way (graph edges are flat records with
/// source/target attributes; see paper §3.1, Example 3).
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    data: BTreeMap<String, Vec<Record>>,
}

impl Instance {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: Arc<Schema>) -> Instance {
        let data = schema
            .top_level_records()
            .map(|r| (r.to_string(), Vec::new()))
            .collect();
        Instance { schema, data }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Validates `record` against record type `name` and inserts it.
    pub fn insert(&mut self, name: &str, record: Record) -> Result<(), InstanceError> {
        if !self.data.contains_key(name) {
            return Err(InstanceError::UnknownRecordType(name.to_string()));
        }
        self.validate(name, &record)?;
        self.data.get_mut(name).expect("checked").push(record);
        Ok(())
    }

    fn validate(&self, name: &str, record: &Record) -> Result<(), InstanceError> {
        let attrs = self.schema.attrs(name);
        if record.fields().len() != attrs.len() {
            return Err(InstanceError::FieldCount {
                record: name.to_string(),
                expected: attrs.len(),
                got: record.fields().len(),
            });
        }
        for (attr, field) in attrs.iter().zip(record.fields()) {
            match (self.schema.def(attr), field) {
                (Some(TypeDef::Prim(t)), Field::Prim(v)) => {
                    if v.prim_type() != Some(*t) {
                        return Err(InstanceError::FieldType {
                            record: name.to_string(),
                            attr: attr.clone(),
                        });
                    }
                }
                (Some(TypeDef::Record(_)), Field::Children(children)) => {
                    for c in children {
                        self.validate(attr, c)?;
                    }
                }
                _ => {
                    return Err(InstanceError::FieldType {
                        record: name.to_string(),
                        attr: attr.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// The records of top-level type `name`.
    pub fn records(&self, name: &str) -> &[Record] {
        self.data.get(name).map_or(&[], Vec::as_slice)
    }

    /// Iterates `(record type, records)` for all top-level types.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Record])> {
        self.data.iter().map(|(n, rs)| (n.as_str(), rs.as_slice()))
    }

    /// Total number of records, including nested ones.
    pub fn num_records(&self) -> usize {
        fn count(r: &Record) -> usize {
            1 + r
                .fields()
                .iter()
                .map(|f| match f {
                    Field::Prim(_) => 0,
                    Field::Children(c) => c.iter().map(count).sum(),
                })
                .sum::<usize>()
        }
        self.data.values().flatten().map(count).sum()
    }

    /// Returns `true` if the instance holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.data.values().all(Vec::is_empty)
    }

    /// Canonical equality: equal iff the two instances have the same
    /// [flattening](crate::Flattened). This is invariant to record order,
    /// duplicate records, and synthetic identifier values, which makes it
    /// the right notion for comparing migration outputs (§4.1's
    /// `O′ = O` test).
    pub fn canon_eq(&self, other: &Instance) -> bool {
        crate::flatten::flatten(self) == crate::flatten::flatten(other)
    }

    /// Canonical flattening of this instance (see [`crate::Flattened`]).
    pub fn flatten(&self) -> crate::flatten::Flattened {
        crate::flatten::flatten(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamite_schema::Schema;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::parse(
                "@document
                 Univ { id: Int, name: String, Admit { uid: Int, count: Int } }",
            )
            .unwrap(),
        )
    }

    fn univ(id: i64, name: &str, admits: &[(i64, i64)]) -> Record {
        Record::with_fields(vec![
            Value::Int(id).into(),
            Value::str(name).into(),
            admits
                .iter()
                .map(|&(u, c)| Record::from_values(vec![u.into(), c.into()]))
                .collect::<Vec<_>>()
                .into(),
        ])
    }

    #[test]
    fn insert_and_query() {
        let mut inst = Instance::new(schema());
        inst.insert("Univ", univ(1, "U1", &[(1, 10), (2, 50)]))
            .unwrap();
        assert_eq!(inst.records("Univ").len(), 1);
        assert_eq!(inst.num_records(), 3);
        let r = &inst.records("Univ")[0];
        assert_eq!(r.prim(0), Some(&Value::Int(1)));
        assert_eq!(r.children(2).unwrap().len(), 2);
    }

    #[test]
    fn rejects_wrong_record_type() {
        let mut inst = Instance::new(schema());
        let err = inst
            .insert("Admit", Record::from_values(vec![]))
            .unwrap_err();
        assert_eq!(err, InstanceError::UnknownRecordType("Admit".into()));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let mut inst = Instance::new(schema());
        let err = inst
            .insert("Univ", Record::from_values(vec![1.into()]))
            .unwrap_err();
        assert!(matches!(err, InstanceError::FieldCount { .. }));
    }

    #[test]
    fn rejects_wrong_prim_type() {
        let mut inst = Instance::new(schema());
        let bad = Record::with_fields(vec![
            Value::str("oops").into(), // id must be Int
            Value::str("U1").into(),
            Vec::<Record>::new().into(),
        ]);
        let err = inst.insert("Univ", bad).unwrap_err();
        assert!(matches!(err, InstanceError::FieldType { .. }));
    }

    #[test]
    fn rejects_bad_nested_record() {
        let mut inst = Instance::new(schema());
        let bad = Record::with_fields(vec![
            Value::Int(1).into(),
            Value::str("U1").into(),
            vec![Record::from_values(vec![Value::str("no"), 10.into()])].into(),
        ]);
        let err = inst.insert("Univ", bad).unwrap_err();
        assert!(matches!(err, InstanceError::FieldType { .. }));
    }

    #[test]
    fn canon_eq_ignores_order_and_duplicates() {
        let mut a = Instance::new(schema());
        a.insert("Univ", univ(1, "U1", &[(1, 10)])).unwrap();
        a.insert("Univ", univ(2, "U2", &[(2, 20)])).unwrap();
        let mut b = Instance::new(schema());
        b.insert("Univ", univ(2, "U2", &[(2, 20)])).unwrap();
        b.insert("Univ", univ(1, "U1", &[(1, 10)])).unwrap();
        b.insert("Univ", univ(1, "U1", &[(1, 10)])).unwrap();
        assert!(a.canon_eq(&b));

        let mut c = Instance::new(schema());
        c.insert("Univ", univ(1, "U1", &[(1, 11)])).unwrap();
        c.insert("Univ", univ(2, "U2", &[(2, 20)])).unwrap();
        assert!(!a.canon_eq(&c));
    }
}
