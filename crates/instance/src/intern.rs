//! Global string interner backing [`Value::Str`](crate::Value::Str).
//!
//! Datalog evaluation compares and hashes string constants constantly:
//! every join key, every deduplication probe, every negation check. With
//! `Arc<str>` payloads each of those walks the string bytes; interning
//! replaces the payload with a dense `u32` [`Symbol`] so tuples compare
//! and hash wordwise and `Value` becomes `Copy`.
//!
//! The interner is process-global (symbols must mean the same string in
//! every [`Database`](crate::Database), or cross-database comparison would
//! be unsound) and append-only: interned strings are leaked once and live
//! for the process lifetime, which is exactly the lifetime the synthesis
//! workload needs — the same benchmark constants are re-used by hundreds
//! of candidate evaluations.

use std::fmt;
use std::hash::Hasher;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::hash::{FxHashMap, FxHasher};

/// An interned string: a dense index into the global intern table.
///
/// Equality and hashing are on the `u32` index; ordering resolves the
/// underlying strings so sort order matches the pre-interning `Arc<str>`
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

// Resolution (`Symbol::as_str`) is on the hot path of ordered
// comparisons (`FlatTable`'s BTreeSets), `Display`, and the writers, so
// it must not take a lock. Symbols index into a chunked, append-only
// side table: a fixed array of chunk pointers, each chunk a fixed array
// of slots holding a pointer to a leaked [`Slot`]. Chunks and slots are
// only ever written under the intern mutex and published with release
// stores, so a reader holding a `Symbol` (whose id it can only have
// received after the slot was written) loads the slot with acquire and
// dereferences without synchronization.
const CHUNK_SIZE: usize = 1 << 12;
const NUM_CHUNKS: usize = 1 << 12; // 16.7M distinct strings max

/// Per-symbol side-table entry: the leaked string plus a *stable* hash of
/// its bytes, computed once at intern time. The stable hash is a pure
/// function of the string content — unlike the symbol index, which
/// depends on process-local intern order — so consumers that must be
/// deterministic across processes (the planner's column statistics) key
/// on it instead of the index.
struct Slot {
    text: &'static str,
    stable: u64,
}

type Chunk = [AtomicPtr<Slot>; CHUNK_SIZE];

static CHUNKS: [AtomicPtr<Chunk>; NUM_CHUNKS] =
    [const { AtomicPtr::new(ptr::null_mut()) }; NUM_CHUNKS];

/// Deterministic, seedless hash of a string's bytes. Must agree across
/// processes and runs: it feeds [`Symbol::stable_hash`], which the column
/// statistics use as the canonical `Str` pattern for planner estimates.
fn stable_str_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    // Length first: the byte stream is zero-padded to word granularity,
    // so without it "a" and "a\0" would collide.
    h.write_usize(s.len());
    h.write(s.as_bytes());
    h.finish()
}

/// Writer-side state: the string→id map (ids are allocated densely).
fn interner() -> &'static Mutex<FxHashMap<&'static str, u32>> {
    static INTERNER: OnceLock<Mutex<FxHashMap<&'static str, u32>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(FxHashMap::default()))
}

impl Symbol {
    /// Interns `s`, returning its symbol. Idempotent: the same string
    /// always yields the same symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut map = interner().lock().expect("interner poisoned");
        if let Some(&id) = map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(map.len()).expect("interner overflow");
        let (chunk_i, slot_i) = (id as usize / CHUNK_SIZE, id as usize % CHUNK_SIZE);
        assert!(chunk_i < NUM_CHUNKS, "interner overflow");
        let mut chunk_ptr = CHUNKS[chunk_i].load(Ordering::Acquire);
        if chunk_ptr.is_null() {
            // Only writers allocate chunks, and we hold the intern lock.
            let fresh: Box<Chunk> =
                Box::new([const { AtomicPtr::new(ptr::null_mut()) }; CHUNK_SIZE]);
            chunk_ptr = Box::leak(fresh);
            CHUNKS[chunk_i].store(chunk_ptr, Ordering::Release);
        }
        let leaked: &'static str = Box::leak(s.into());
        let slot: &'static Slot = Box::leak(Box::new(Slot {
            text: leaked,
            stable: stable_str_hash(leaked),
        }));
        // SAFETY: chunk_ptr is non-null and points to a leaked Chunk.
        let chunk: &Chunk = unsafe { &*chunk_ptr };
        chunk[slot_i].store(slot as *const Slot as *mut Slot, Ordering::Release);
        map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string, resolved lock-free. Interned strings live for
    /// the process lifetime, hence the `'static` borrow.
    pub fn as_str(self) -> &'static str {
        self.slot().text
    }

    /// A hash of the interned string's **bytes**, computed once at intern
    /// time and resolved lock-free. Two symbols for the same string hash
    /// identically in every process, regardless of intern order — the
    /// property the planner's column statistics need for cross-process
    /// deterministic plans (distinct strings may collide, which can only
    /// weaken estimates, never soundness).
    #[inline]
    pub fn stable_hash(self) -> u64 {
        self.slot().stable
    }

    #[inline]
    fn slot(self) -> &'static Slot {
        let (chunk_i, slot_i) = (self.0 as usize / CHUNK_SIZE, self.0 as usize % CHUNK_SIZE);
        let chunk_ptr = CHUNKS[chunk_i].load(Ordering::Acquire);
        // SAFETY: a `Symbol` can only be obtained from `intern`, which
        // published this chunk and slot (release) before returning the id;
        // receiving the Symbol on another thread implies the necessary
        // happens-before edge, and the acquire loads pair with the
        // release stores for direct racing access.
        let slots: &Chunk = unsafe { &*chunk_ptr };
        let slot = slots[slot_i].load(Ordering::Acquire);
        unsafe { &*slot.cast_const() }
    }

    /// The raw index (useful for dense side tables).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from an index previously obtained via
    /// [`Symbol::index`]. Crate-internal: an index that never came out of
    /// `intern` has no table entry behind it, and resolving such a symbol
    /// would read unpublished slots. The columnar store's payload streams
    /// only ever hold indices of real symbols, which is the one caller.
    #[inline(always)]
    pub(crate) fn from_index(index: u32) -> Symbol {
        Symbol(index)
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("hello-intern-test");
        let b = Symbol::intern("hello-intern-test");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello-intern-test");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("alpha-x"), Symbol::intern("alpha-y"));
    }

    #[test]
    fn ordering_is_string_order() {
        // Intern in reverse lexicographic order so index order and string
        // order disagree.
        let b = Symbol::intern("zz-order-test");
        let a = Symbol::intern("aa-order-test");
        assert!(a < b);
        assert!(a <= a);
    }

    #[test]
    fn stable_hash_is_content_derived() {
        let a = Symbol::intern("stable-hash-a");
        let b = Symbol::intern("stable-hash-a");
        let c = Symbol::intern("stable-hash-c");
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_ne!(a.stable_hash(), c.stable_hash());
        // Pure function of the bytes, not the intern-order index.
        assert_eq!(a.stable_hash(), stable_str_hash("stable-hash-a"));
        // Prefix-padding does not collide with the padded word.
        assert_ne!(
            stable_str_hash("p"),
            stable_str_hash("p\0"),
            "length must participate in the stable hash"
        );
    }

    #[test]
    fn deref_gives_str_methods() {
        let s = Symbol::intern("has,comma");
        assert!(s.contains(','));
        assert_eq!(&*s, "has,comma");
    }

    #[test]
    fn cross_thread_resolution() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let s = format!("thread-{}-{}", t % 2, i);
                        let sym = Symbol::intern(&s);
                        assert_eq!(sym.as_str(), s);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        // Duplicate interning across threads converged on one id.
        assert_eq!(Symbol::intern("thread-0-0"), Symbol::intern("thread-0-0"));
    }
}
