//! Columnar tuple storage in structure-of-arrays (tag/payload) form.
//!
//! [`TupleStore`] keeps a relation's tuples column-major, and each column
//! itself split into **two parallel streams** (a structure-of-arrays
//! layout): a `Vec<u8>` of variant *tags* and a `Vec<u64>` of canonical
//! *payload* words — the [`Value::to_raw`] decomposition, under which two
//! values are equal iff their tags and payloads both are. A compact
//! row-hash deduplication table maps a 64-bit row hash to the row indices
//! bearing that hash. Because [`Value`] is `Copy` (and reassembles from a
//! `(tag, payload)` pair in a couple of instructions), a tuple is never
//! materialized on insert or lookup — the store is the only owner of the
//! data, and every consumer sees rows through the borrowed [`RowRef`]
//! view or columns through the borrowed [`ColumnSlices`] view.
//!
//! # Why split tags from payloads?
//!
//! The previous layout stored each column as one `Vec<Value>`. `Value` is
//! a 16-byte tagged enum, and that layout defeats LLVM's autovectorizer:
//! a constant-filter sweep compiled to a scalar 16-byte compare per row
//! however the loop was phrased (measured in PR 4 — every SIMD mask
//! formulation lost to the scalar loop). With the split,
//!
//! ```text
//!   column c:   tags      [ t0 t1 t2 t3 … ]   one byte  per row
//!               payloads  [ p0 p1 p2 p3 … ]   one u64   per row
//! ```
//!
//! an equality probe against a constant `(t, p)` is two branch-free
//! integer compares over dense homogeneous streams — exactly the shape
//! the autovectorizer turns into packed compares — and per-value memory
//! traffic drops from 16 to 9 bytes. [`TupleStore::filter_const_rows`]
//! builds on this: its dense path computes a 64-row *hit bitmask* per
//! chunk (tag mask AND payload mask, additional constants ANDing in
//! their own masks) and then materializes row ids from the mask's set
//! bits.
//!
//! # Invariants
//!
//! - **Equal lengths.** All `2 × arity` streams have exactly `len()`
//!   entries; row `i`'s value in column `c` is
//!   `(tags[i], payloads[i])` of column `c`.
//! - **Row-hash dedup.** `dedup` maps the hash of a row's value sequence
//!   to the ids of the rows bearing it (almost always exactly one — the
//!   table stores a single word per entry in the collision-free case).
//!   Every insert path probes it first, so the store never holds two
//!   equal rows and `insert` can report freshness without a scan.
//! - **Stable insertion order.** Row `i` is the `i`-th distinct tuple
//!   ever inserted; ids never move while the store only grows, so join
//!   indexes and the engine's incrementally extended overlay indexes
//!   stay valid across inserts. The one exception is
//!   [`TupleStore::remove_rows`] (incremental maintenance's retraction
//!   path): it compacts the streams, shifting every id above a removed
//!   row down, so callers must drop or rebuild any id-keyed structure
//!   over the store afterwards. Survivors keep their relative order.
//! - **Valid payloads only.** Payload words are only ever produced by
//!   [`Value::to_raw`] on a real value, so reassembly (including interned
//!   [`Symbol`](crate::Symbol) indices) is always sound.
//! - **Tracked vs untracked statistics.** A tracked store folds every
//!   accepted insert into its per-column [`ColumnStats`]; an *untracked*
//!   store ([`TupleStore::new_untracked`]) maintains none and returns
//!   `None` from [`TupleStore::column_stats`] — the filter kernel then
//!   skips its statistics prune, with identical results.

use std::collections::hash_map::Entry;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::hash::{FxHashMap, FxHasher};
use crate::stats::ColumnStats;
use crate::value::Value;

/// Hash of one row, independent of storage layout.
fn hash_values(values: impl Iterator<Item = Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Removes the entries at the ascending, deduplicated indices `dead`
/// from `v` in one left-to-right compaction sweep, preserving the
/// survivors' relative order. `dead` must be non-empty and in range.
fn drop_indices<T: Copy>(v: &mut Vec<T>, dead: &[usize]) {
    let mut write = dead[0];
    let mut next = 0;
    for read in dead[0]..v.len() {
        if next < dead.len() && dead[next] == read {
            next += 1;
            continue;
        }
        v[write] = v[read];
        write += 1;
    }
    v.truncate(write);
}

/// Remaps one row id across a compaction that removed the ascending,
/// deduplicated pre-compaction ids `dead`: returns `false` if the id
/// itself is dead, otherwise shifts it down past the dead ids beneath
/// it and returns `true`.
fn remap_row_id(r: &mut u32, dead: &[usize]) -> bool {
    let id = *r as usize;
    let below = dead.partition_point(|&d| d < id);
    if dead.get(below).is_some_and(|&d| d == id) {
        return false;
    }
    *r = (id - below) as u32;
    true
}

/// The row indices behind one row hash. Collisions are rare, so the table
/// almost always holds the inline single-row form.
#[derive(Debug, Clone)]
enum RowSlot {
    /// Exactly one row bears this hash (the overwhelmingly common case).
    One(u32),
    /// Hash collision: several distinct rows share the hash.
    Many(Vec<u32>),
}

/// One column in structure-of-arrays form: the variant-tag byte stream
/// and the canonical payload word stream, always of equal length.
#[derive(Clone, Default)]
struct Column {
    tags: Vec<u8>,
    payloads: Vec<u64>,
}

impl Column {
    fn with_capacity(rows: usize) -> Column {
        Column {
            tags: Vec::with_capacity(rows),
            payloads: Vec::with_capacity(rows),
        }
    }

    #[inline(always)]
    fn push(&mut self, v: Value) {
        let (t, p) = v.to_raw();
        self.tags.push(t);
        self.payloads.push(p);
    }

    /// The value at row `i` without bounds checks — the innermost
    /// join-loop accessor, where checked indexing's extra compares are
    /// measurable on candidate-sweep workloads.
    ///
    /// # Safety
    /// `i` must be less than the column length.
    #[inline(always)]
    unsafe fn value_unchecked(&self, i: usize) -> Value {
        debug_assert!(i < self.tags.len());
        Value::from_raw(*self.tags.get_unchecked(i), *self.payloads.get_unchecked(i))
    }

    /// Raw equality probe: `true` iff row `i` holds exactly `(t, p)`.
    #[inline(always)]
    fn is(&self, i: usize, t: u8, p: u64) -> bool {
        self.tags[i] == t && self.payloads[i] == p
    }
}

/// A deduplicated, insertion-ordered set of fixed-arity tuples, stored
/// column-major with each column split into tag/payload streams (see the
/// module docs of `tuple_store` for the layout and its invariants).
///
/// This is the storage layer beneath [`Relation`](crate::Relation): the
/// extensional input and intensional output format of the Datalog engine,
/// the fact representation of §3.3, and the unit the synthesizer's
/// example-evaluation loop iterates over.
///
/// ```
/// use dynamite_instance::{TupleStore, Value};
///
/// let mut s = TupleStore::new(2);
/// assert!(s.insert(&[Value::Int(1), Value::Int(10)]));
/// assert!(s.insert(&[Value::Int(2), Value::Int(20)]));
/// assert!(!s.insert(&[Value::Int(1), Value::Int(10)])); // duplicate
/// assert_eq!(s.len(), 2);
/// let col = s.column(1);
/// assert_eq!(col.iter().collect::<Vec<_>>(), [Value::Int(10), Value::Int(20)]);
/// let first = s.get(0).unwrap();
/// assert_eq!(first.at(0), Value::Int(1));
/// ```
#[derive(Clone, Default)]
pub struct TupleStore {
    arity: usize,
    /// Number of (distinct) rows. Tracked separately because an arity-0
    /// store has no columns to measure.
    rows: usize,
    /// One tag/payload stream pair per column; all of length `rows`.
    cols: Vec<Column>,
    /// Row-hash deduplication table: row hash → row indices.
    dedup: FxHashMap<u64, RowSlot>,
    /// Per-column statistics (bounds + distinct sketch), maintained
    /// incrementally on every accepted insert — the cost model behind
    /// the engine's join planner. Empty for *untracked* stores
    /// ([`TupleStore::new_untracked`]): transient buffers whose
    /// statistics nobody will ever read skip the per-insert upkeep.
    stats: Vec<ColumnStats>,
    /// Rows removed since the statistics were last rebuilt from the
    /// survivors (tombstones the statistics still reflect). Bounds and
    /// KMV sketches are add-only and cannot un-observe a value, so a
    /// removal leaves the statistics a sound over-approximation; the
    /// O(rows) re-observation sweep is deferred until tombstones reach a
    /// quarter of the live rows, amortizing small delete batches.
    stale: usize,
}

impl TupleStore {
    /// Creates an empty store of the given arity.
    pub fn new(arity: usize) -> TupleStore {
        TupleStore {
            arity,
            rows: 0,
            cols: vec![Column::default(); arity],
            dedup: FxHashMap::default(),
            stats: vec![ColumnStats::default(); arity],
            stale: 0,
        }
    }

    /// Creates an empty store of the given arity that does **not**
    /// maintain per-column statistics. For transient stores on hot
    /// insert paths whose statistics are never consulted — the Datalog
    /// engine's per-evaluation IDB overlays and delta buffers — the
    /// upkeep is pure overhead. [`TupleStore::column_stats`] returns
    /// `None` for every column and the filter kernel simply skips its
    /// statistics prune; correctness is unaffected.
    pub fn new_untracked(arity: usize) -> TupleStore {
        TupleStore {
            arity,
            rows: 0,
            cols: vec![Column::default(); arity],
            dedup: FxHashMap::default(),
            stats: Vec::new(),
            stale: 0,
        }
    }

    /// Creates an empty store with room for `rows` tuples per column.
    pub fn with_capacity(arity: usize, rows: usize) -> TupleStore {
        TupleStore {
            arity,
            rows: 0,
            cols: (0..arity).map(|_| Column::with_capacity(rows)).collect(),
            dedup: FxHashMap::default(),
            stats: vec![ColumnStats::default(); arity],
            stale: 0,
        }
    }

    /// Builds a store directly from column vectors (bulk columnar loading).
    /// Rows are deduplicated; later duplicates are dropped.
    ///
    /// # Panics
    /// Panics if the columns have unequal lengths.
    pub fn from_columns(cols: Vec<Vec<Value>>) -> TupleStore {
        let rows = cols.first().map_or(0, Vec::len);
        assert!(
            cols.iter().all(|c| c.len() == rows),
            "columns have unequal lengths"
        );
        let mut store = TupleStore::with_capacity(cols.len(), rows);
        for r in 0..rows {
            let row = || cols.iter().map(|c| c[r]);
            let hash = hash_values(row());
            if store.locate(hash, row()).is_none() {
                store.push_row(hash, row());
            }
        }
        store
    }

    /// The number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of (distinct) rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` if the store holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The borrowed tag/payload streams of column `c` — the unit of
    /// columnar index builds, projections, and the SIMD-shaped filter
    /// kernel. Values materialize on demand through
    /// [`ColumnSlices::value`] / [`ColumnSlices::iter`].
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline]
    pub fn column(&self, c: usize) -> ColumnSlices<'_> {
        let col = &self.cols[c];
        ColumnSlices {
            tags: &col.tags,
            payloads: &col.payloads,
        }
    }

    /// The incrementally maintained statistics of column `c` (bounds and
    /// distinct-count sketch) — the join planner's cost inputs. `None`
    /// when the store is untracked ([`TupleStore::new_untracked`]) or
    /// `c` is out of range.
    pub fn column_stats(&self, c: usize) -> Option<&ColumnStats> {
        self.stats.get(c)
    }

    /// Row ids in `[start, end)` (clamped to the store) whose `consts`
    /// columns equal the paired constants, ascending — the batched,
    /// statistics-driven constant-filter kernel behind the engine's
    /// pre-scan.
    ///
    /// Three decisions are made from the column statistics before any
    /// row is touched:
    ///
    /// 1. **Range prune**: a constant outside a column's observed value
    ///    range short-circuits the whole scan to an empty result.
    /// 2. **Probe order**: the estimated most-selective constant is swept
    ///    first; under the sparse strategy the remaining constants only
    ///    re-check its (few) survivors.
    /// 3. **Sweep strategy**: when the expected hit fraction is low, a
    ///    conditional-append scan is optimal (the branch predicts
    ///    "miss"); when hits are frequent — where that branch would
    ///    mispredict constantly on real, unordered data — the sweep runs
    ///    the **bitmask kernel**: per 64-row chunk, a branch-free pass
    ///    over the tag and payload streams builds a hit mask (additional
    ///    constants AND in their own masks), and row ids are emitted by
    ///    iterating the mask's set bits. The mask loops are plain
    ///    fixed-trip compare-reduce loops over `&[u8; 64]` / `&[u64; 64]`
    ///    chunks, which LLVM autovectorizes into packed compares —
    ///    the structure-of-arrays layout's payoff.
    ///
    /// Untracked stores ([`TupleStore::new_untracked`]) skip all three
    /// and behave like the conditional scan in the given probe order.
    ///
    /// # Panics
    /// Panics if any constant's column index is out of range.
    pub fn filter_const_rows(
        &self,
        consts: &[(usize, Value)],
        start: usize,
        end: usize,
    ) -> Vec<u32> {
        let (s, e) = (start.min(self.rows), end.min(self.rows));
        if s >= e {
            return Vec::new();
        }
        if consts.is_empty() {
            return (s..e).map(|i| i as u32).collect();
        }
        // Range prune: a constant outside a column's observed range
        // cannot match any row.
        if consts
            .iter()
            .any(|&(c, v)| self.stats.get(c).is_some_and(|st| st.excludes(v)))
        {
            return Vec::new();
        }
        // Expected hit fraction of one probe, from the distinct sketch
        // (`None` when untracked: assume sparse).
        let hit_fraction = |c: usize| -> Option<f64> {
            let d = self.stats.get(c)?.distinct_estimate(self.rows).max(1);
            Some(1.0 / d as f64)
        };
        // Probe order: most selective constant first. `consts` is tiny
        // (one or two entries for real rules), so a scan for the minimum
        // beats sorting.
        let lead = (0..consts.len())
            .min_by(|&a, &b| {
                let fa = hit_fraction(consts[a].0).unwrap_or(0.0);
                let fb = hit_fraction(consts[b].0).unwrap_or(0.0);
                fa.total_cmp(&fb)
            })
            .expect("consts non-empty");
        let (c0, v0) = consts[lead];
        let (t0, p0) = v0.to_raw();
        let frac = hit_fraction(c0).unwrap_or(0.0);

        /// Above this expected hit fraction the conditional scan's
        /// append branch mispredicts often enough that the bitmask
        /// kernel wins (measured crossover is between 1/50 and 1/4).
        const DENSE_FRACTION: f64 = 1.0 / 16.0;
        /// Below this many rows the bitmask kernel's chunk setup
        /// outweighs any misprediction savings.
        const DENSE_MIN_ROWS: usize = 1024;
        let col0 = &self.cols[c0];
        if frac < DENSE_FRACTION || e - s < DENSE_MIN_ROWS {
            // Sparse: conditional append on the lead probe (branch
            // predicted "miss"), then re-check only the survivors
            // against the remaining constants. Zipping the two stream
            // slices keeps the sweep bounds-check free.
            let mut ids: Vec<u32> = col0.tags[s..e]
                .iter()
                .zip(&col0.payloads[s..e])
                .enumerate()
                .filter(|&(_, (&tg, &pw))| (tg == t0) & (pw == p0))
                .map(|(j, _)| (s + j) as u32)
                .collect();
            for (i, &(c, v)) in consts.iter().enumerate() {
                if i == lead {
                    continue;
                }
                let col = &self.cols[c];
                let (t, p) = v.to_raw();
                ids.retain(|&r| col.is(r as usize, t, p));
            }
            return ids;
        }
        // Dense: the chunked bitmask kernel. Per 64-row chunk, build a
        // hit mask from the lead constant's tag/payload streams
        // (vectorized compares), AND in each remaining constant's mask
        // (skipped when the mask is already empty), then emit row ids
        // from the set bits — ascending, so iteration order matches a
        // plain scan's.
        let mut ids = Vec::with_capacity(((e - s) as f64 * frac) as usize + LANES);
        let mut off = s;
        while off + LANES <= e {
            let mut mask = lane_mask(
                col0.tags[off..off + LANES].try_into().expect("chunk"),
                col0.payloads[off..off + LANES].try_into().expect("chunk"),
                t0,
                p0,
            );
            for (i, &(c, v)) in consts.iter().enumerate() {
                if i == lead || mask == 0 {
                    continue;
                }
                let col = &self.cols[c];
                let (t, p) = v.to_raw();
                mask &= lane_mask(
                    col.tags[off..off + LANES].try_into().expect("chunk"),
                    col.payloads[off..off + LANES].try_into().expect("chunk"),
                    t,
                    p,
                );
            }
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                ids.push((off + j) as u32);
                mask &= mask - 1;
            }
            off += LANES;
        }
        // Remainder (< 64 rows): the conditional scan over all consts.
        for i in off..e {
            if consts.iter().all(|&(c, v)| {
                let (t, p) = v.to_raw();
                self.cols[c].is(i, t, p)
            }) {
                ids.push(i as u32);
            }
        }
        ids
    }

    /// Locates the stored row whose values equal `probe` (with `hash`
    /// precomputed over the same values) — the one dedup lookup shared by
    /// every insert/membership entry point.
    fn locate(&self, hash: u64, probe: impl Iterator<Item = Value> + Clone) -> Option<usize> {
        // Every caller passes exactly `arity` values (checked at the
        // public entry points), so a zip-all is a full row comparison.
        let eq = |r: usize| {
            self.cols.iter().zip(probe.clone()).all(|(c, v)| {
                let (t, p) = v.to_raw();
                c.is(r, t, p)
            })
        };
        match self.dedup.get(&hash)? {
            RowSlot::One(r) => {
                let r = *r as usize;
                eq(r).then_some(r)
            }
            RowSlot::Many(rs) => rs.iter().map(|&r| r as usize).find(|&r| eq(r)),
        }
    }

    /// Appends a row known to be absent; `values` must yield `arity` items.
    fn push_row(&mut self, hash: u64, values: impl Iterator<Item = Value>) {
        let id = u32::try_from(self.rows).expect("TupleStore exceeds u32 rows");
        let mut pushed = 0;
        for (c, v) in values.enumerate() {
            self.cols[c].push(v);
            if let Some(st) = self.stats.get_mut(c) {
                st.observe(v);
            }
            pushed += 1;
        }
        debug_assert_eq!(pushed, self.arity, "row arity mismatch in push_row");
        self.rows += 1;
        self.dedup_insert(hash, id);
    }

    /// Records row `id` under `hash` in the dedup table.
    fn dedup_insert(&mut self, hash: u64, id: u32) {
        match self.dedup.entry(hash) {
            Entry::Vacant(e) => {
                e.insert(RowSlot::One(id));
            }
            Entry::Occupied(mut e) => match e.get_mut() {
                RowSlot::One(first) => {
                    let first = *first;
                    *e.get_mut() = RowSlot::Many(vec![first, id]);
                }
                RowSlot::Many(rs) => rs.push(id),
            },
        }
    }

    /// Inserts a row; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the row's arity does not match the store's.
    pub fn insert(&mut self, row: &[Value]) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        let hash = hash_values(row.iter().copied());
        if self.locate(hash, row.iter().copied()).is_some() {
            return false;
        }
        self.push_row(hash, row.iter().copied());
        true
    }

    /// Inserts a row built from a vector of values.
    pub fn insert_values(&mut self, values: Vec<Value>) -> bool {
        self.insert(&values)
    }

    /// Inserts a row viewed in another store (no intermediate allocation).
    ///
    /// # Panics
    /// Panics if the row's arity does not match the store's.
    pub fn insert_row(&mut self, row: RowRef<'_>) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        let hash = hash_values(row.iter());
        if self.locate(hash, row.iter()).is_some() {
            return false;
        }
        self.push_row(hash, row.iter());
        true
    }

    /// Bulk-inserts rows (deduplicating as usual).
    pub fn extend_rows<I>(&mut self, rows: I)
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        for row in rows {
            self.insert(&row);
        }
    }

    /// Removes every listed row that is present (rows of the wrong arity
    /// or not in the store are ignored) and compacts the streams;
    /// returns how many rows were actually removed.
    ///
    /// See [`TupleStore::remove_rows_indices`] for the compaction
    /// contract; this wrapper is for callers that do not own any
    /// id-keyed structures over the store.
    pub fn remove_rows<I, R>(&mut self, rows: I) -> usize
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[Value]>,
    {
        self.remove_rows_indices(rows).len()
    }

    /// [`TupleStore::remove_rows`], additionally reporting the removed
    /// rows' **pre-compaction** ids in ascending order.
    ///
    /// This is the retraction path of incremental maintenance and the
    /// one operation that moves row ids: every id above a removed row
    /// shifts down by the number of removed rows beneath it, and
    /// survivors keep their relative insertion order. Callers owning
    /// id-keyed structures over this store (join indexes, the engine's
    /// overlay indexes) must repair them with the returned list — drop
    /// the dead ids and shift the survivors — rather than rebuilding
    /// from scratch, so a small batch of removals costs the structure
    /// O(its own size) pointer work instead of a full re-hash of every
    /// surviving row. The dedup table here is repaired exactly that way.
    ///
    /// A tracked store's per-column statistics are **not** swept on
    /// every call: bounds and KMV sketches are add-only and cannot
    /// "un-observe" a value, so after a removal they remain a sound
    /// over-approximation of the survivors — still safe for the
    /// planner's pruning and costing, just less tight. The O(rows)
    /// re-observation sweep is therefore deferred behind a tombstone
    /// counter ([`TupleStore::stale_stat_rows`]) and runs only once
    /// tombstones reach a quarter of the live rows, so a stream of
    /// small delete batches pays amortized-constant stats upkeep
    /// instead of O(rows) each. Batches that remove nothing return
    /// before any stats bookkeeping.
    pub fn remove_rows_indices<I, R>(&mut self, rows: I) -> Vec<usize>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[Value]>,
    {
        let mut dead: Vec<usize> = rows
            .into_iter()
            .filter_map(|row| {
                let row = row.as_ref();
                if row.len() != self.arity {
                    return None;
                }
                let hash = hash_values(row.iter().copied());
                self.locate(hash, row.iter().copied())
            })
            .collect();
        dead.sort_unstable();
        dead.dedup();
        if dead.is_empty() {
            return dead;
        }
        for col in &mut self.cols {
            drop_indices(&mut col.tags, &dead);
            drop_indices(&mut col.payloads, &dead);
        }
        self.rows -= dead.len();
        self.remap_dedup(&dead);
        if !self.stats.is_empty() {
            self.stale += dead.len();
            if self.stale * 4 >= self.rows {
                self.resweep_stats();
            }
        }
        dead
    }

    /// Rebuilds the per-column statistics from the surviving rows and
    /// clears the tombstone counter. O(rows · arity).
    fn resweep_stats(&mut self) {
        self.stats = vec![ColumnStats::default(); self.arity];
        for (st, col) in self.stats.iter_mut().zip(&self.cols) {
            for (&t, &p) in col.tags.iter().zip(&col.payloads) {
                st.observe(Value::from_raw(t, p));
            }
        }
        self.stale = 0;
    }

    /// The number of removed rows the per-column statistics still
    /// reflect — tombstones accumulated since the last re-observation
    /// sweep. Always `0` right after a sweep (and for untracked stores,
    /// which keep no statistics to go stale). The statistics remain
    /// sound over-approximations while this is non-zero; see
    /// [`TupleStore::remove_rows_indices`].
    pub fn stale_stat_rows(&self) -> usize {
        self.stale
    }

    /// Removes one row if present; returns `true` when it was removed.
    /// See [`TupleStore::remove_rows_indices`] for the compaction
    /// contract.
    pub fn remove(&mut self, row: &[Value]) -> bool {
        self.remove_rows(std::iter::once(row)) == 1
    }

    /// Repairs the row-hash table after compaction moved row ids: drops
    /// the `dead` ids (ascending, pre-compaction) and shifts every
    /// survivor down by the number of dead ids beneath it. Unlike a
    /// from-scratch rebuild this never re-hashes a row, so its cost is
    /// the table sweep itself.
    fn remap_dedup(&mut self, dead: &[usize]) {
        self.dedup.retain(|_, slot| {
            let keep = match slot {
                RowSlot::One(r) => remap_row_id(r, dead),
                RowSlot::Many(rs) => {
                    rs.retain_mut(|r| remap_row_id(r, dead));
                    !rs.is_empty()
                }
            };
            if let RowSlot::Many(rs) = slot {
                if rs.len() == 1 {
                    *slot = RowSlot::One(rs[0]);
                }
            }
            keep
        });
    }

    /// Membership test.
    pub fn contains(&self, row: &[Value]) -> bool {
        if row.len() != self.arity {
            return false;
        }
        let hash = hash_values(row.iter().copied());
        self.locate(hash, row.iter().copied()).is_some()
    }

    /// Membership test against a row viewed in another store.
    pub fn contains_row(&self, row: RowRef<'_>) -> bool {
        if row.len() != self.arity {
            return false;
        }
        let hash = hash_values(row.iter());
        self.locate(hash, row.iter()).is_some()
    }

    /// The `i`-th row in insertion order.
    #[inline]
    pub fn get(&self, i: usize) -> Option<RowRef<'_>> {
        (i < self.rows).then_some(RowRef {
            store: self,
            row: i,
        })
    }

    /// Iterates rows in insertion order as borrowed [`RowRef`] views.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> + Clone {
        (0..self.rows).map(move |row| RowRef { store: self, row })
    }

    /// Set equality (ignores insertion order).
    pub fn set_eq(&self, other: &TupleStore) -> bool {
        self.arity == other.arity
            && self.rows == other.rows
            && self.iter().all(|r| other.contains_row(r))
    }

    /// Returns the set of distinct values appearing in column `col`.
    pub fn column_values(&self, col: usize) -> HashSet<Value> {
        self.column(col).iter().collect()
    }

    /// Projects onto the given columns, returning the set of projected
    /// rows. The gather is a contiguous sweep over the column streams.
    pub fn project(&self, cols: &[usize]) -> HashSet<Vec<Value>> {
        let slices: Vec<ColumnSlices<'_>> = cols.iter().map(|&c| self.column(c)).collect();
        (0..self.rows)
            .map(|r| slices.iter().map(|s| s.value(r)).collect())
            .collect()
    }
}

/// Bitmask-kernel width: one 64-row chunk per mask word.
const LANES: usize = 64;

/// The branch-free hit mask of one 64-row chunk: bit `j` is set iff row
/// `j` of the chunk holds exactly `(t, p)`.
///
/// On x86-64 with AVX2 (checked once at runtime via the std feature
/// cache) this dispatches to [`lane_mask_avx2`] — two 32-byte packed tag
/// compares plus sixteen 4×`u64` packed payload compares, each reduced
/// to mask bits with `movemask`. Everywhere else it falls back to
/// [`lane_mask_portable`]. Both produce identical masks; only the
/// instruction mix differs.
#[inline]
fn lane_mask(tags: &[u8; LANES], payloads: &[u64; LANES], t: u8, p: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { lane_mask_avx2(tags, payloads, t, p) };
    }
    lane_mask_portable(tags, payloads, t, p)
}

/// Explicit AVX2 formulation of [`lane_mask`]: the tag stream is two
/// `vpcmpeqb` + `vpmovmskb` (32 rows per instruction), the payload
/// stream sixteen `vpcmpeqq` whose 4-lane results drop to mask bits via
/// `movemask_pd`; the two 64-bit masks AND together.
///
/// # Safety
/// Callers must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lane_mask_avx2(tags: &[u8; LANES], payloads: &[u64; LANES], t: u8, p: u64) -> u64 {
    use std::arch::x86_64::*;
    let tv = _mm256_set1_epi8(t as i8);
    let pv = _mm256_set1_epi64x(p as i64);
    let lo = _mm256_cmpeq_epi8(_mm256_loadu_si256(tags.as_ptr().cast()), tv);
    let hi = _mm256_cmpeq_epi8(_mm256_loadu_si256(tags.as_ptr().add(32).cast()), tv);
    let tag_mask = u64::from(_mm256_movemask_epi8(lo) as u32)
        | (u64::from(_mm256_movemask_epi8(hi) as u32) << 32);
    let mut pay_mask = 0u64;
    for k in 0..LANES / 4 {
        let v = _mm256_loadu_si256(payloads.as_ptr().add(4 * k).cast());
        let eq = _mm256_cmpeq_epi64(v, pv);
        pay_mask |= (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u64) << (4 * k);
    }
    tag_mask & pay_mask
}

/// Portable [`lane_mask`] fallback. Two phases, both branch-free:
///
/// 1. **Compare** the tag and payload streams into a per-row hit byte.
///    Fixed-size array arguments give these loops constant trip counts
///    and bounds-check-free indexing, which is what LLVM's
///    autovectorizer needs to emit packed compares over the `u64`
///    payload words and the `u8` tag bytes — the structure-of-arrays
///    layout's payoff (the old 16-byte `Value` enum never vectorized).
/// 2. **Bitpack** the 64 hit bytes into one mask word, eight bytes at a
///    time: a little-endian `u64` load of eight 0/1 bytes multiplied by
///    `0x0102_0408_1020_4080` funnels byte `j`'s low bit into bit
///    `56 + j` (the bytes are 0 or 1, so no carries cross), and the top
///    byte after the shift is the 8-bit mask.
///
/// Deliberately `#[inline(never)]`: inlined into the kernel's chunk
/// loop, LLVM's SLP pass fails to re-vectorize the unrolled compares;
/// compiled standalone, both phases come out as packed compares (SSE2
/// `pcmpeqd`/`pcmpeqb` on baseline x86-64). One `call` per 64 rows is
/// noise next to the 72 bytes of stream data the chunk reads.
#[inline(never)]
fn lane_mask_portable(tags: &[u8; LANES], payloads: &[u64; LANES], t: u8, p: u64) -> u64 {
    let mut hits = [0u8; LANES];
    for j in 0..LANES {
        hits[j] = u8::from(payloads[j] == p);
    }
    for j in 0..LANES {
        hits[j] &= u8::from(tags[j] == t);
    }
    let mut mask = 0u64;
    for (k, chunk) in hits.chunks_exact(8).enumerate() {
        let b = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        mask |= (b.wrapping_mul(0x0102_0408_1020_4080) >> 56) << (8 * k);
    }
    mask
}

impl PartialEq for TupleStore {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for TupleStore {}

impl FromIterator<Vec<Value>> for TupleStore {
    fn from_iter<I: IntoIterator<Item = Vec<Value>>>(iter: I) -> TupleStore {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, Vec::len);
        let mut store = TupleStore::new(arity);
        store.extend_rows(it);
        store
    }
}

impl fmt::Debug for TupleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleStore")
            .field("arity", &self.arity)
            .field("rows", &self.iter().collect::<Vec<_>>())
            .finish()
    }
}

/// The borrowed structure-of-arrays streams of one [`TupleStore`] column:
/// the variant-tag bytes and the canonical payload words, index-aligned
/// (entry `i` of both describes row `i`; see [`Value::to_raw`]).
///
/// Consumers that only need values use [`ColumnSlices::value`] /
/// [`ColumnSlices::iter`] (reassembly is a couple of instructions);
/// kernel-shaped consumers read [`ColumnSlices::tags`] /
/// [`ColumnSlices::payloads`] directly and sweep the raw streams.
#[derive(Clone, Copy)]
pub struct ColumnSlices<'a> {
    tags: &'a [u8],
    payloads: &'a [u64],
}

impl<'a> ColumnSlices<'a> {
    /// The number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The contiguous variant-tag byte stream (one [`Value::to_raw`] tag
    /// per row).
    #[inline]
    pub fn tags(&self) -> &'a [u8] {
        self.tags
    }

    /// The contiguous canonical payload word stream (one
    /// [`Value::to_raw`] payload per row).
    #[inline]
    pub fn payloads(&self) -> &'a [u64] {
        self.payloads
    }

    /// The value at row `i`, reassembled from its tag/payload pair.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline(always)]
    pub fn value(&self, i: usize) -> Value {
        Value::from_raw(self.tags[i], self.payloads[i])
    }

    /// Iterates the column's values in row order.
    #[inline]
    pub fn iter(self) -> impl ExactSizeIterator<Item = Value> + Clone + 'a {
        self.tags
            .iter()
            .zip(self.payloads)
            .map(|(&t, &p)| Value::from_raw(t, p))
    }
}

impl fmt::Debug for ColumnSlices<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// A borrowed view of one row of a [`TupleStore`].
///
/// `RowRef` is two words (store pointer + row index) and `Copy`; access
/// resolves through the column streams and reassembles values on demand,
/// so no tuple is ever materialized.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    store: &'a TupleStore,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.arity
    }

    /// `true` for rows of an arity-0 store.
    pub fn is_empty(&self) -> bool {
        self.store.arity == 0
    }

    /// The value in column `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline(always)]
    pub fn at(&self, c: usize) -> Value {
        // SAFETY: a `RowRef` is only created by `TupleStore::get`
        // (bounds-checked) and `TupleStore::iter` (range-bounded), so
        // `row < rows == column length` holds at construction; removal
        // (`remove_rows`) takes `&mut self` and therefore cannot overlap
        // any live `RowRef`, so the bound cannot shrink underneath one.
        // The column lookup stays checked (`c` is caller-supplied).
        unsafe { self.store.cols[c].value_unchecked(self.row) }
    }

    /// The value in column `c`, or `None` when out of range.
    #[inline]
    pub fn get(&self, c: usize) -> Option<Value> {
        (c < self.store.arity).then(|| self.at(c))
    }

    /// Iterates the row's values in column order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Value> + Clone + 'a {
        let RowRef { store, row } = *self;
        // SAFETY: `row` is in range for every column — see `RowRef::at`.
        store
            .cols
            .iter()
            .map(move |c| unsafe { c.value_unchecked(row) })
    }

    /// Materializes the row as an owned vector.
    pub fn to_vec(&self) -> Vec<Value> {
        self.iter().collect()
    }
}

impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for RowRef<'_> {}

impl PartialEq<[Value]> for RowRef<'_> {
    fn eq(&self, other: &[Value]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<&[Value]> for RowRef<'_> {
    fn eq(&self, other: &&[Value]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<Value>> for RowRef<'_> {
    fn eq(&self, other: &Vec<Value>) -> bool {
        *self == other.as_slice()
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn column_vec(s: &TupleStore, c: usize) -> Vec<Value> {
        s.column(c).iter().collect()
    }

    #[test]
    fn insert_dedups_and_keeps_order() {
        let mut s = TupleStore::new(2);
        assert!(s.insert(&t(&[1, 2])));
        assert!(s.insert(&t(&[3, 4])));
        assert!(!s.insert(&t(&[1, 2])));
        assert_eq!(s.len(), 2);
        assert_eq!(column_vec(&s, 0), t(&[1, 3]));
        assert_eq!(column_vec(&s, 1), t(&[2, 4]));
        let rows: Vec<Vec<Value>> = s.iter().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![t(&[1, 2]), t(&[3, 4])]);
    }

    #[test]
    fn row_ref_access() {
        let mut s = TupleStore::new(3);
        s.insert(&t(&[7, 8, 9]));
        let r = s.get(0).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.at(1), Value::Int(8));
        assert_eq!(r.get(2), Some(Value::Int(9)));
        assert_eq!(r.get(3), None);
        assert_eq!(r, t(&[7, 8, 9]));
        assert!(s.get(1).is_none());
    }

    #[test]
    fn column_slices_expose_raw_streams() {
        let mut s = TupleStore::new(2);
        s.insert(&[Value::Int(-1), Value::str("soa-slices")]);
        s.insert(&[Value::Id(7), Value::Bool(true)]);
        let c0 = s.column(0);
        // Tags follow the to_raw convention; payloads are the canonical
        // words, index-aligned with the tags.
        assert_eq!(c0.tags(), &[0, 3]);
        assert_eq!(c0.payloads(), &[(-1i64) as u64, 7]);
        assert_eq!(c0.value(1), Value::Id(7));
        let c1 = s.column(1);
        assert_eq!(c1.len(), 2);
        assert_eq!(c1.tags(), &[1, 2]);
        assert_eq!(c1.value(0), Value::str("soa-slices"));
        assert_eq!(c1.value(1), Value::Bool(true));
        // Round trip through the streams reproduces the rows.
        for (i, row) in s.iter().enumerate() {
            for c in 0..s.arity() {
                let slices = s.column(c);
                assert_eq!(
                    Value::from_raw(slices.tags()[i], slices.payloads()[i]),
                    row.at(c)
                );
            }
        }
    }

    #[test]
    fn contains_row_across_stores() {
        let mut a = TupleStore::new(2);
        a.insert(&t(&[1, 2]));
        let mut b = TupleStore::new(2);
        b.insert(&t(&[1, 2]));
        b.insert(&t(&[3, 4]));
        assert!(b.contains_row(a.get(0).unwrap()));
        assert!(!a.contains_row(b.get(1).unwrap()));
    }

    #[test]
    fn insert_row_copies_across_stores() {
        let mut a = TupleStore::new(2);
        a.insert(&t(&[1, 2]));
        a.insert(&t(&[3, 4]));
        let mut b = TupleStore::new(2);
        b.insert(&t(&[3, 4]));
        for r in a.iter() {
            b.insert_row(r);
        }
        assert_eq!(b.len(), 2);
        // b keeps its own insertion order: [3,4] first.
        assert_eq!(b.get(0).unwrap(), t(&[3, 4]));
        assert_eq!(b.get(1).unwrap(), t(&[1, 2]));
    }

    #[test]
    fn zero_arity_store_holds_at_most_one_row() {
        let mut s = TupleStore::new(0);
        assert!(s.insert(&[]));
        assert!(!s.insert(&[]));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&[]));
        assert!(s.get(0).unwrap().is_empty());
    }

    #[test]
    fn from_columns_bulk_load() {
        let s = TupleStore::from_columns(vec![t(&[1, 1, 2]), t(&[10, 10, 20])]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.len(), 2); // (1,10) deduplicated
        assert!(s.contains(&t(&[1, 10])));
        assert!(s.contains(&t(&[2, 20])));
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn from_columns_rejects_ragged_input() {
        TupleStore::from_columns(vec![t(&[1]), t(&[1, 2])]);
    }

    #[test]
    fn arity_mismatch_contains_is_false_not_panic() {
        let mut s = TupleStore::new(2);
        s.insert(&t(&[1, 2]));
        assert!(!s.contains(&t(&[1])));
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = TupleStore::new(1);
        a.extend_rows([t(&[1]), t(&[2])]);
        let mut b = TupleStore::new(1);
        b.extend_rows([t(&[2]), t(&[1])]);
        assert_eq!(a, b);
        b.insert(&t(&[3]));
        assert_ne!(a, b);
    }

    /// Reference semantics for `filter_const_rows`: a scalar scan.
    fn scalar_filter(s: &TupleStore, consts: &[(usize, Value)], lo: usize, hi: usize) -> Vec<u32> {
        (lo.min(s.len())..hi.min(s.len()))
            .filter(|&i| consts.iter().all(|&(c, v)| s.column(c).value(i) == v))
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn filter_const_rows_matches_scalar_scan() {
        let mut s = TupleStore::new(3);
        for i in 0..5000i64 {
            s.insert(&[
                Value::Int(i % 13),
                Value::str(["x", "y", "z"][(i % 3) as usize]),
                Value::Int(i),
            ]);
        }
        let cases: Vec<Vec<(usize, Value)>> = vec![
            vec![(0, Value::Int(7))],
            vec![(1, Value::str("y"))],
            vec![(0, Value::Int(7)), (1, Value::str("y"))],
            vec![(0, Value::Int(999))], // absent: stats prune
            vec![(2, Value::Int(4999))],
        ];
        for consts in &cases {
            for (lo, hi) in [
                (0, usize::MAX),
                (0, 1000),
                (1023, 1025),
                (4096, 5000),
                (5000, 9000),
                (3, 4997), // unaligned dense range: chunk + remainder
            ] {
                assert_eq!(
                    s.filter_const_rows(consts, lo, hi),
                    scalar_filter(&s, consts, lo, hi),
                    "consts {consts:?} range {lo}..{hi}"
                );
            }
        }
        // No constants: the whole (clamped) range.
        assert_eq!(s.filter_const_rows(&[], 10, 12), vec![10, 11]);
        // Empty / inverted ranges.
        assert!(s.filter_const_rows(&cases[0], 40, 40).is_empty());
        assert!(s.filter_const_rows(&cases[0], 100, 40).is_empty());
    }

    #[test]
    fn filter_distinguishes_equal_payloads_across_tags() {
        // Int(7), Id(7), and Bool(true)/Int(1) share payload words; only
        // the tag stream separates them. The kernel's tag mask must keep
        // them apart in both the sparse and the dense regime. A unique
        // second column keeps every row distinct under dedup, so column
        // 0 really holds each tied value in every fourth row — 4096 rows
        // at 4 distinct values puts each probe on the dense bitmask
        // path (hit fraction 1/4 ≫ 1/16, rows ≫ 1024).
        let mut s = TupleStore::new(2);
        for i in 0..4096i64 {
            let v = match i % 4 {
                0 => Value::Int(7),
                1 => Value::Id(7),
                2 => Value::Int(1),
                _ => Value::Bool(true),
            };
            s.insert(&[v, Value::Int(i)]);
        }
        assert_eq!(s.len(), 4096);
        for v in [
            Value::Int(7),
            Value::Id(7),
            Value::Bool(true),
            Value::Int(1),
        ] {
            let got = s.filter_const_rows(&[(0, v)], 0, usize::MAX);
            assert_eq!(got.len(), 1024, "probe {v} must hit every 4th row");
            assert_eq!(
                got,
                scalar_filter(&s, &[(0, v)], 0, usize::MAX),
                "probe {v}"
            );
        }
        // And sparse: a probe absent from the dense column (in-range for
        // the stats bounds, so the prune cannot shortcut it).
        assert!(s
            .filter_const_rows(&[(0, Value::Int(3))], 0, usize::MAX)
            .is_empty());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_and_portable_lane_masks_agree() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // nothing to differentiate on this hardware
        }
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let mut tags = [0u8; LANES];
            let mut payloads = [0u64; LANES];
            for j in 0..LANES {
                tags[j] = (rnd() % 4) as u8;
                payloads[j] = rnd() % 8; // small domain: plenty of hits
            }
            let (t, p) = ((rnd() % 4) as u8, rnd() % 8);
            assert_eq!(
                // SAFETY: AVX2 support verified above.
                unsafe { lane_mask_avx2(&tags, &payloads, t, p) },
                lane_mask_portable(&tags, &payloads, t, p),
                "case {case}: masks diverge for probe ({t}, {p})"
            );
        }
    }

    #[test]
    fn column_stats_track_inserted_values() {
        let mut s = TupleStore::new(2);
        for i in 0..100i64 {
            s.insert(&[Value::Int(i % 4), Value::Int(i)]);
        }
        let stats0 = s.column_stats(0).expect("tracked");
        assert_eq!(stats0.distinct_estimate(s.len()), 4);
        assert!(stats0.excludes(Value::Int(50)));
        assert!(!s.column_stats(1).expect("tracked").excludes(Value::Int(50)));
        assert!(s.column_stats(2).is_none(), "out of range");
        // Duplicate-row inserts are rejected and must not perturb stats.
        assert!(!s.insert(&[Value::Int(1), Value::Int(1)]));
        assert_eq!(
            s.column_stats(0)
                .expect("tracked")
                .distinct_estimate(s.len()),
            4
        );
    }

    #[test]
    fn untracked_store_filters_without_stats() {
        let mut tracked = TupleStore::new(2);
        let mut untracked = TupleStore::new_untracked(2);
        for i in 0..500i64 {
            let row = [Value::Int(i % 9), Value::Int(i)];
            tracked.insert(&row);
            untracked.insert(&row);
        }
        assert!(untracked.column_stats(0).is_none());
        // Same rows, same filter results — with and without the prune.
        for v in [3i64, 9, -1] {
            let consts = [(0usize, Value::Int(v))];
            assert_eq!(
                tracked.filter_const_rows(&consts, 0, usize::MAX),
                untracked.filter_const_rows(&consts, 0, usize::MAX),
                "constant {v}"
            );
        }
    }

    #[test]
    fn remove_rows_compacts_and_keeps_survivor_order() {
        let mut s = TupleStore::new(2);
        for i in 0..10i64 {
            s.insert(&t(&[i, i * 10]));
        }
        // Remove a middle row, the first row, the last row, a duplicate
        // request, an absent row, and a wrong-arity row.
        let removed = s.remove_rows([
            t(&[4, 40]),
            t(&[0, 0]),
            t(&[9, 90]),
            t(&[4, 40]),  // duplicate request
            t(&[77, 77]), // absent
            t(&[1]),      // wrong arity
        ]);
        assert_eq!(removed, 3);
        assert_eq!(s.len(), 7);
        let rows: Vec<Vec<Value>> = s.iter().map(|r| r.to_vec()).collect();
        let want: Vec<Vec<Value>> = [1i64, 2, 3, 5, 6, 7, 8]
            .iter()
            .map(|&i| t(&[i, i * 10]))
            .collect();
        assert_eq!(rows, want, "survivors keep their relative order");
        // Dedup table is consistent: membership, re-insertion, and
        // re-removal all behave on the compacted store.
        assert!(!s.contains(&t(&[4, 40])));
        assert!(s.contains(&t(&[5, 50])));
        assert!(s.insert(&t(&[4, 40])), "removed row inserts as new");
        assert!(!s.insert(&t(&[5, 50])), "survivor still deduplicates");
        assert!(s.remove(&t(&[4, 40])));
        assert!(!s.remove(&t(&[4, 40])), "second removal is a no-op");
    }

    #[test]
    fn remove_rows_recomputes_tracked_stats() {
        let mut s = TupleStore::new(2);
        for i in 0..100i64 {
            s.insert(&[Value::Int(i % 4), Value::Int(i)]);
        }
        // Drop every row with column 0 >= 2: the observed range shrinks,
        // and only a full recompute (not add-only upkeep) can know it.
        let dead: Vec<Vec<Value>> = s
            .iter()
            .filter(|r| r.at(0) >= Value::Int(2))
            .map(|r| r.to_vec())
            .collect();
        assert_eq!(s.remove_rows(&dead), 50);
        let stats0 = s.column_stats(0).expect("tracked");
        assert_eq!(stats0.distinct_estimate(s.len()), 2);
        assert!(stats0.excludes(Value::Int(3)), "3 no longer observed");
        assert!(!stats0.excludes(Value::Int(1)));
        // Untracked stores skip the recompute but still compact.
        let mut u = TupleStore::new_untracked(1);
        u.extend_rows([t(&[1]), t(&[2]), t(&[3])]);
        assert_eq!(u.remove_rows([t(&[2])]), 1);
        assert!(u.column_stats(0).is_none());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn remove_rows_defers_stats_sweep_for_small_batches() {
        // A small delete batch must not pay the O(rows) re-observation
        // sweep: the tombstone counter sizes the deferred work, and the
        // stats stay a sound over-approximation until the sweep runs.
        let mut s = TupleStore::new(1);
        for i in 0..1000i64 {
            s.insert(&t(&[i]));
        }
        // Remove the top 50 values: far under the quarter threshold.
        let batch: Vec<Vec<Value>> = (950..1000i64).map(|i| t(&[i])).collect();
        assert_eq!(s.remove_rows(&batch), 50);
        assert_eq!(s.stale_stat_rows(), 50, "sweep deferred, tombstones sized");
        let stats0 = s.column_stats(0).expect("tracked");
        assert!(
            !stats0.excludes(Value::Int(999)),
            "deferred stats still over-approximate the removed range"
        );
        assert!(!stats0.excludes(Value::Int(0)), "live values stay included");

        // Three more batches reach the threshold (200 tombstones against
        // 800 survivors) and trigger exactly one sweep.
        for lo in [900i64, 850, 800] {
            let batch: Vec<Vec<Value>> = (lo..lo + 50).map(|i| t(&[i])).collect();
            assert_eq!(s.remove_rows(&batch), 50);
        }
        assert_eq!(
            s.stale_stat_rows(),
            0,
            "threshold crossed: stats resweep ran"
        );
        let stats0 = s.column_stats(0).expect("tracked");
        assert!(
            stats0.excludes(Value::Int(999)),
            "after the sweep the removed range is pruned again"
        );
        assert!(!stats0.excludes(Value::Int(0)));
    }

    #[test]
    fn remove_rows_empty_batch_skips_stats_bookkeeping() {
        let mut s = TupleStore::new(1);
        for i in 0..100i64 {
            s.insert(&t(&[i]));
        }
        // Seed one tombstone so the fast path's "unchanged" is observable.
        assert_eq!(s.remove_rows([t(&[99])]), 1);
        assert_eq!(s.stale_stat_rows(), 1);
        // Absent and wrong-arity rows remove nothing: no compaction, no
        // sweep, tombstone count untouched.
        assert_eq!(s.remove_rows([t(&[500]), t(&[1, 2])]), 0);
        assert_eq!(s.stale_stat_rows(), 1);
        assert_eq!(s.len(), 99);
        // Untracked stores never accumulate tombstones.
        let mut u = TupleStore::new_untracked(1);
        u.extend_rows([t(&[1]), t(&[2])]);
        u.remove_rows([t(&[1])]);
        assert_eq!(u.stale_stat_rows(), 0);
    }

    #[test]
    fn remove_rows_handles_hash_collision_slots_and_zero_arity() {
        // Many rows through the dedup table exercise both RowSlot forms
        // during the rebuild; a randomized removal set exercises
        // interleaved dead runs in the compaction sweep.
        let mut s = TupleStore::new(1);
        for i in 0..2000i64 {
            s.insert(&t(&[i]));
        }
        let dead: Vec<Vec<Value>> = (0..2000i64)
            .filter(|i| i % 3 == 0)
            .map(|i| t(&[i]))
            .collect();
        assert_eq!(s.remove_rows(&dead), dead.len());
        assert_eq!(s.len(), 2000 - dead.len());
        for i in 0..2000i64 {
            assert_eq!(s.contains(&t(&[i])), i % 3 != 0, "row {i}");
        }
        // Zero-arity stores compact their (absent) columns consistently.
        let mut z = TupleStore::new(0);
        z.insert(&[]);
        assert!(z.remove(&[]));
        assert!(z.is_empty());
        assert!(!z.contains(&[]));
        assert!(z.insert(&[]));
    }

    #[test]
    fn projection_gathers_columns() {
        let mut s = TupleStore::new(3);
        s.insert(&t(&[1, 2, 3]));
        s.insert(&t(&[1, 5, 3]));
        let p = s.project(&[0, 2]);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&t(&[1, 3])));
        assert_eq!(s.column_values(1).len(), 2);
    }
}
