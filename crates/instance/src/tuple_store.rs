//! Columnar tuple storage.
//!
//! [`TupleStore`] keeps a relation's tuples column-major: one `Vec<Value>`
//! per column, all of equal length, plus a compact row-hash deduplication
//! table that maps a 64-bit row hash to the row indices bearing that hash.
//! Because [`Value`] is `Copy`, a tuple is never materialized on insert or
//! lookup — the store is the only owner of the data, and every consumer
//! sees rows through the borrowed [`RowRef`] view.
//!
//! Compared with the previous row-oriented layout (`FxHashSet<Arc<[Value]>>`
//! for dedup plus an insertion-ordered `Vec<Arc<[Value]>>`, storing every
//! tuple twice behind two pointer indirections), this layout:
//!
//! - stores each value exactly once, contiguously per column;
//! - makes index builds and projections a sweep over column slices
//!   ([`TupleStore::column`]) instead of a pointer chase per tuple;
//! - deduplicates through a `u64 → row id` table whose entries are a
//!   single word in the common (collision-free) case — no per-tuple
//!   allocation anywhere on the insert path.
//!
//! Insertion order is preserved: row `i` is the `i`-th distinct tuple ever
//! inserted, so existing row indices (join indexes, parent-id indexes)
//! stay stable as the store grows — the property the Datalog engine's
//! incrementally extended overlay indexes rely on.

use std::collections::hash_map::Entry;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Index;

use crate::hash::{FxHashMap, FxHasher};
use crate::value::Value;

/// Hash of one row, independent of storage layout.
fn hash_values(values: impl Iterator<Item = Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// The row indices behind one row hash. Collisions are rare, so the table
/// almost always holds the inline single-row form.
#[derive(Debug, Clone)]
enum RowSlot {
    /// Exactly one row bears this hash (the overwhelmingly common case).
    One(u32),
    /// Hash collision: several distinct rows share the hash.
    Many(Vec<u32>),
}

/// A deduplicated, insertion-ordered set of fixed-arity tuples, stored
/// column-major.
///
/// This is the storage layer beneath [`Relation`](crate::Relation): the
/// extensional input and intensional output format of the Datalog engine,
/// the fact representation of §3.3, and the unit the synthesizer's
/// example-evaluation loop iterates over.
///
/// ```
/// use dynamite_instance::{TupleStore, Value};
///
/// let mut s = TupleStore::new(2);
/// assert!(s.insert(&[Value::Int(1), Value::Int(10)]));
/// assert!(s.insert(&[Value::Int(2), Value::Int(20)]));
/// assert!(!s.insert(&[Value::Int(1), Value::Int(10)])); // duplicate
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.column(1), &[Value::Int(10), Value::Int(20)]);
/// let first = s.get(0).unwrap();
/// assert_eq!(first[0], Value::Int(1));
/// ```
#[derive(Clone, Default)]
pub struct TupleStore {
    arity: usize,
    /// Number of (distinct) rows. Tracked separately because an arity-0
    /// store has no columns to measure.
    rows: usize,
    /// One vector per column; all of length `rows`.
    cols: Vec<Vec<Value>>,
    /// Row-hash deduplication table: row hash → row indices.
    dedup: FxHashMap<u64, RowSlot>,
}

impl TupleStore {
    /// Creates an empty store of the given arity.
    pub fn new(arity: usize) -> TupleStore {
        TupleStore {
            arity,
            rows: 0,
            cols: vec![Vec::new(); arity],
            dedup: FxHashMap::default(),
        }
    }

    /// Creates an empty store with room for `rows` tuples per column.
    pub fn with_capacity(arity: usize, rows: usize) -> TupleStore {
        TupleStore {
            arity,
            rows: 0,
            // Not `vec![Vec::with_capacity(rows); arity]`: cloning an
            // empty Vec copies its contents, not its capacity.
            cols: (0..arity).map(|_| Vec::with_capacity(rows)).collect(),
            dedup: FxHashMap::default(),
        }
    }

    /// Builds a store directly from column vectors (bulk columnar loading).
    /// Rows are deduplicated; later duplicates are dropped.
    ///
    /// # Panics
    /// Panics if the columns have unequal lengths.
    pub fn from_columns(cols: Vec<Vec<Value>>) -> TupleStore {
        let rows = cols.first().map_or(0, Vec::len);
        assert!(
            cols.iter().all(|c| c.len() == rows),
            "columns have unequal lengths"
        );
        let mut store = TupleStore::with_capacity(cols.len(), rows);
        for r in 0..rows {
            let row = || cols.iter().map(|c| c[r]);
            let hash = hash_values(row());
            if store.locate(hash, row()).is_none() {
                store.push_row(hash, row());
            }
        }
        store
    }

    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` if the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The contiguous value slice of column `c` — the unit of columnar
    /// index builds, projections, and (future) SIMD filtering.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    pub fn column(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// Locates the stored row whose values equal `probe` (with `hash`
    /// precomputed over the same values) — the one dedup lookup shared by
    /// every insert/membership entry point.
    fn locate(&self, hash: u64, probe: impl Iterator<Item = Value> + Clone) -> Option<usize> {
        let eq = |r: usize| self.cols.iter().map(|c| c[r]).eq(probe.clone());
        match self.dedup.get(&hash)? {
            RowSlot::One(r) => {
                let r = *r as usize;
                eq(r).then_some(r)
            }
            RowSlot::Many(rs) => rs.iter().map(|&r| r as usize).find(|&r| eq(r)),
        }
    }

    /// Appends a row known to be absent; `values` must yield `arity` items.
    fn push_row(&mut self, hash: u64, values: impl Iterator<Item = Value>) {
        let id = u32::try_from(self.rows).expect("TupleStore exceeds u32 rows");
        let mut pushed = 0;
        for (c, v) in values.enumerate() {
            self.cols[c].push(v);
            pushed += 1;
        }
        debug_assert_eq!(pushed, self.arity, "row arity mismatch in push_row");
        self.rows += 1;
        match self.dedup.entry(hash) {
            Entry::Vacant(e) => {
                e.insert(RowSlot::One(id));
            }
            Entry::Occupied(mut e) => match e.get_mut() {
                RowSlot::One(first) => {
                    let first = *first;
                    *e.get_mut() = RowSlot::Many(vec![first, id]);
                }
                RowSlot::Many(rs) => rs.push(id),
            },
        }
    }

    /// Inserts a row; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the row's arity does not match the store's.
    pub fn insert(&mut self, row: &[Value]) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        let hash = hash_values(row.iter().copied());
        if self.locate(hash, row.iter().copied()).is_some() {
            return false;
        }
        self.push_row(hash, row.iter().copied());
        true
    }

    /// Inserts a row built from a vector of values.
    pub fn insert_values(&mut self, values: Vec<Value>) -> bool {
        self.insert(&values)
    }

    /// Inserts a row viewed in another store (no intermediate allocation).
    ///
    /// # Panics
    /// Panics if the row's arity does not match the store's.
    pub fn insert_row(&mut self, row: RowRef<'_>) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        let hash = hash_values(row.iter());
        if self.locate(hash, row.iter()).is_some() {
            return false;
        }
        self.push_row(hash, row.iter());
        true
    }

    /// Bulk-inserts rows (deduplicating as usual).
    pub fn extend_rows<I>(&mut self, rows: I)
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        for row in rows {
            self.insert(&row);
        }
    }

    /// Membership test.
    pub fn contains(&self, row: &[Value]) -> bool {
        if row.len() != self.arity {
            return false;
        }
        let hash = hash_values(row.iter().copied());
        self.locate(hash, row.iter().copied()).is_some()
    }

    /// Membership test against a row viewed in another store.
    pub fn contains_row(&self, row: RowRef<'_>) -> bool {
        if row.len() != self.arity {
            return false;
        }
        let hash = hash_values(row.iter());
        self.locate(hash, row.iter()).is_some()
    }

    /// The `i`-th row in insertion order.
    pub fn get(&self, i: usize) -> Option<RowRef<'_>> {
        (i < self.rows).then_some(RowRef {
            store: self,
            row: i,
        })
    }

    /// Iterates rows in insertion order as borrowed [`RowRef`] views.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> + Clone {
        (0..self.rows).map(move |row| RowRef { store: self, row })
    }

    /// Set equality (ignores insertion order).
    pub fn set_eq(&self, other: &TupleStore) -> bool {
        self.arity == other.arity
            && self.rows == other.rows
            && self.iter().all(|r| other.contains_row(r))
    }

    /// Returns the set of distinct values appearing in column `col`.
    pub fn column_values(&self, col: usize) -> HashSet<Value> {
        self.cols[col].iter().copied().collect()
    }

    /// Projects onto the given columns, returning the set of projected
    /// rows. The gather is a contiguous sweep over the column slices.
    pub fn project(&self, cols: &[usize]) -> HashSet<Vec<Value>> {
        let slices: Vec<&[Value]> = cols.iter().map(|&c| self.column(c)).collect();
        (0..self.rows)
            .map(|r| slices.iter().map(|s| s[r]).collect())
            .collect()
    }
}

impl PartialEq for TupleStore {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for TupleStore {}

impl FromIterator<Vec<Value>> for TupleStore {
    fn from_iter<I: IntoIterator<Item = Vec<Value>>>(iter: I) -> TupleStore {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, Vec::len);
        let mut store = TupleStore::new(arity);
        store.extend_rows(it);
        store
    }
}

impl fmt::Debug for TupleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleStore")
            .field("arity", &self.arity)
            .field("rows", &self.iter().collect::<Vec<_>>())
            .finish()
    }
}

/// A borrowed view of one row of a [`TupleStore`].
///
/// `RowRef` is two words (store pointer + row index) and `Copy`; indexing
/// resolves through the column vectors, so no tuple is ever materialized.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    store: &'a TupleStore,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The number of columns.
    pub fn len(&self) -> usize {
        self.store.arity
    }

    /// `true` for rows of an arity-0 store.
    pub fn is_empty(&self) -> bool {
        self.store.arity == 0
    }

    /// The value in column `c`, or `None` when out of range.
    pub fn get(&self, c: usize) -> Option<Value> {
        (c < self.store.arity).then(|| self.store.cols[c][self.row])
    }

    /// Iterates the row's values in column order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Value> + Clone + 'a {
        let RowRef { store, row } = *self;
        store.cols.iter().map(move |c| c[row])
    }

    /// Materializes the row as an owned vector.
    pub fn to_vec(&self) -> Vec<Value> {
        self.iter().collect()
    }
}

impl Index<usize> for RowRef<'_> {
    type Output = Value;

    fn index(&self, c: usize) -> &Value {
        &self.store.cols[c][self.row]
    }
}

impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for RowRef<'_> {}

impl PartialEq<[Value]> for RowRef<'_> {
    fn eq(&self, other: &[Value]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<&[Value]> for RowRef<'_> {
    fn eq(&self, other: &&[Value]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<Value>> for RowRef<'_> {
    fn eq(&self, other: &Vec<Value>) -> bool {
        *self == other.as_slice()
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_dedups_and_keeps_order() {
        let mut s = TupleStore::new(2);
        assert!(s.insert(&t(&[1, 2])));
        assert!(s.insert(&t(&[3, 4])));
        assert!(!s.insert(&t(&[1, 2])));
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0), &[Value::Int(1), Value::Int(3)][..]);
        assert_eq!(s.column(1), &[Value::Int(2), Value::Int(4)][..]);
        let rows: Vec<Vec<Value>> = s.iter().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![t(&[1, 2]), t(&[3, 4])]);
    }

    #[test]
    fn row_ref_access() {
        let mut s = TupleStore::new(3);
        s.insert(&t(&[7, 8, 9]));
        let r = s.get(0).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[1], Value::Int(8));
        assert_eq!(r.get(2), Some(Value::Int(9)));
        assert_eq!(r.get(3), None);
        assert_eq!(r, t(&[7, 8, 9]));
        assert!(s.get(1).is_none());
    }

    #[test]
    fn contains_row_across_stores() {
        let mut a = TupleStore::new(2);
        a.insert(&t(&[1, 2]));
        let mut b = TupleStore::new(2);
        b.insert(&t(&[1, 2]));
        b.insert(&t(&[3, 4]));
        assert!(b.contains_row(a.get(0).unwrap()));
        assert!(!a.contains_row(b.get(1).unwrap()));
    }

    #[test]
    fn insert_row_copies_across_stores() {
        let mut a = TupleStore::new(2);
        a.insert(&t(&[1, 2]));
        a.insert(&t(&[3, 4]));
        let mut b = TupleStore::new(2);
        b.insert(&t(&[3, 4]));
        for r in a.iter() {
            b.insert_row(r);
        }
        assert_eq!(b.len(), 2);
        // b keeps its own insertion order: [3,4] first.
        assert_eq!(b.get(0).unwrap(), t(&[3, 4]));
        assert_eq!(b.get(1).unwrap(), t(&[1, 2]));
    }

    #[test]
    fn zero_arity_store_holds_at_most_one_row() {
        let mut s = TupleStore::new(0);
        assert!(s.insert(&[]));
        assert!(!s.insert(&[]));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&[]));
        assert!(s.get(0).unwrap().is_empty());
    }

    #[test]
    fn from_columns_bulk_load() {
        let s = TupleStore::from_columns(vec![t(&[1, 1, 2]), t(&[10, 10, 20])]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.len(), 2); // (1,10) deduplicated
        assert!(s.contains(&t(&[1, 10])));
        assert!(s.contains(&t(&[2, 20])));
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn from_columns_rejects_ragged_input() {
        TupleStore::from_columns(vec![t(&[1]), t(&[1, 2])]);
    }

    #[test]
    fn arity_mismatch_contains_is_false_not_panic() {
        let mut s = TupleStore::new(2);
        s.insert(&t(&[1, 2]));
        assert!(!s.contains(&t(&[1])));
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = TupleStore::new(1);
        a.extend_rows([t(&[1]), t(&[2])]);
        let mut b = TupleStore::new(1);
        b.extend_rows([t(&[2]), t(&[1])]);
        assert_eq!(a, b);
        b.insert(&t(&[3]));
        assert_ne!(a, b);
    }

    #[test]
    fn projection_gathers_columns() {
        let mut s = TupleStore::new(3);
        s.insert(&t(&[1, 2, 3]));
        s.insert(&t(&[1, 5, 3]));
        let p = s.project(&[0, 2]);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&t(&[1, 3])));
        assert_eq!(s.column_values(1).len(), 2);
    }
}
