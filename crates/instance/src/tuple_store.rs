//! Columnar tuple storage.
//!
//! [`TupleStore`] keeps a relation's tuples column-major: one `Vec<Value>`
//! per column, all of equal length, plus a compact row-hash deduplication
//! table that maps a 64-bit row hash to the row indices bearing that hash.
//! Because [`Value`] is `Copy`, a tuple is never materialized on insert or
//! lookup — the store is the only owner of the data, and every consumer
//! sees rows through the borrowed [`RowRef`] view.
//!
//! Compared with the previous row-oriented layout (`FxHashSet<Arc<[Value]>>`
//! for dedup plus an insertion-ordered `Vec<Arc<[Value]>>`, storing every
//! tuple twice behind two pointer indirections), this layout:
//!
//! - stores each value exactly once, contiguously per column;
//! - makes index builds and projections a sweep over column slices
//!   ([`TupleStore::column`]) instead of a pointer chase per tuple;
//! - deduplicates through a `u64 → row id` table whose entries are a
//!   single word in the common (collision-free) case — no per-tuple
//!   allocation anywhere on the insert path.
//!
//! Insertion order is preserved: row `i` is the `i`-th distinct tuple ever
//! inserted, so existing row indices (join indexes, parent-id indexes)
//! stay stable as the store grows — the property the Datalog engine's
//! incrementally extended overlay indexes rely on.

use std::collections::hash_map::Entry;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Index;

use crate::hash::{FxHashMap, FxHasher};
use crate::stats::ColumnStats;
use crate::value::Value;

/// Hash of one row, independent of storage layout.
fn hash_values(values: impl Iterator<Item = Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// The row indices behind one row hash. Collisions are rare, so the table
/// almost always holds the inline single-row form.
#[derive(Debug, Clone)]
enum RowSlot {
    /// Exactly one row bears this hash (the overwhelmingly common case).
    One(u32),
    /// Hash collision: several distinct rows share the hash.
    Many(Vec<u32>),
}

/// A deduplicated, insertion-ordered set of fixed-arity tuples, stored
/// column-major.
///
/// This is the storage layer beneath [`Relation`](crate::Relation): the
/// extensional input and intensional output format of the Datalog engine,
/// the fact representation of §3.3, and the unit the synthesizer's
/// example-evaluation loop iterates over.
///
/// ```
/// use dynamite_instance::{TupleStore, Value};
///
/// let mut s = TupleStore::new(2);
/// assert!(s.insert(&[Value::Int(1), Value::Int(10)]));
/// assert!(s.insert(&[Value::Int(2), Value::Int(20)]));
/// assert!(!s.insert(&[Value::Int(1), Value::Int(10)])); // duplicate
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.column(1), &[Value::Int(10), Value::Int(20)]);
/// let first = s.get(0).unwrap();
/// assert_eq!(first[0], Value::Int(1));
/// ```
#[derive(Clone, Default)]
pub struct TupleStore {
    arity: usize,
    /// Number of (distinct) rows. Tracked separately because an arity-0
    /// store has no columns to measure.
    rows: usize,
    /// One vector per column; all of length `rows`.
    cols: Vec<Vec<Value>>,
    /// Row-hash deduplication table: row hash → row indices.
    dedup: FxHashMap<u64, RowSlot>,
    /// Per-column statistics (bounds + distinct sketch), maintained
    /// incrementally on every accepted insert — the cost model behind
    /// the engine's join planner. Empty for *untracked* stores
    /// ([`TupleStore::new_untracked`]): transient buffers whose
    /// statistics nobody will ever read skip the per-insert upkeep.
    stats: Vec<ColumnStats>,
}

impl TupleStore {
    /// Creates an empty store of the given arity.
    pub fn new(arity: usize) -> TupleStore {
        TupleStore {
            arity,
            rows: 0,
            cols: vec![Vec::new(); arity],
            dedup: FxHashMap::default(),
            stats: vec![ColumnStats::default(); arity],
        }
    }

    /// Creates an empty store of the given arity that does **not**
    /// maintain per-column statistics. For transient stores on hot
    /// insert paths whose statistics are never consulted — the Datalog
    /// engine's per-evaluation IDB overlays and delta buffers — the
    /// upkeep is pure overhead. [`TupleStore::column_stats`] returns
    /// `None` for every column and the filter kernel simply skips its
    /// statistics prune; correctness is unaffected.
    pub fn new_untracked(arity: usize) -> TupleStore {
        TupleStore {
            arity,
            rows: 0,
            cols: vec![Vec::new(); arity],
            dedup: FxHashMap::default(),
            stats: Vec::new(),
        }
    }

    /// Creates an empty store with room for `rows` tuples per column.
    pub fn with_capacity(arity: usize, rows: usize) -> TupleStore {
        TupleStore {
            arity,
            rows: 0,
            // Not `vec![Vec::with_capacity(rows); arity]`: cloning an
            // empty Vec copies its contents, not its capacity.
            cols: (0..arity).map(|_| Vec::with_capacity(rows)).collect(),
            dedup: FxHashMap::default(),
            stats: vec![ColumnStats::default(); arity],
        }
    }

    /// Builds a store directly from column vectors (bulk columnar loading).
    /// Rows are deduplicated; later duplicates are dropped.
    ///
    /// # Panics
    /// Panics if the columns have unequal lengths.
    pub fn from_columns(cols: Vec<Vec<Value>>) -> TupleStore {
        let rows = cols.first().map_or(0, Vec::len);
        assert!(
            cols.iter().all(|c| c.len() == rows),
            "columns have unequal lengths"
        );
        let mut store = TupleStore::with_capacity(cols.len(), rows);
        for r in 0..rows {
            let row = || cols.iter().map(|c| c[r]);
            let hash = hash_values(row());
            if store.locate(hash, row()).is_none() {
                store.push_row(hash, row());
            }
        }
        store
    }

    /// The number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of (distinct) rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` if the store holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The contiguous value slice of column `c` — the unit of columnar
    /// index builds, projections, and (future) SIMD filtering.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline]
    pub fn column(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// The incrementally maintained statistics of column `c` (bounds and
    /// distinct-count sketch) — the join planner's cost inputs. `None`
    /// when the store is untracked ([`TupleStore::new_untracked`]) or
    /// `c` is out of range.
    pub fn column_stats(&self, c: usize) -> Option<&ColumnStats> {
        self.stats.get(c)
    }

    /// Row ids in `[start, end)` (clamped to the store) whose `consts`
    /// columns equal the paired constants, ascending — the batched,
    /// statistics-driven constant-filter kernel behind the engine's
    /// pre-scan.
    ///
    /// Three decisions are made from the column statistics before any
    /// row is touched:
    ///
    /// 1. **Range prune**: a constant outside a column's observed value
    ///    range short-circuits the whole scan to an empty result.
    /// 2. **Probe order**: the estimated most-selective constant is swept
    ///    first; the remaining constants only re-check its (few)
    ///    survivors.
    /// 3. **Sweep strategy**: when the expected hit fraction is low, a
    ///    conditional-append scan is optimal (the branch predicts
    ///    "miss"); when hits are frequent — where that branch would
    ///    mispredict constantly on real, unordered data — the sweep runs
    ///    as a chunked, *branch-free* compaction (unconditional store +
    ///    counter bump per row) at a flat cost per row.
    ///
    /// Untracked stores ([`TupleStore::new_untracked`]) skip all three
    /// and behave like the conditional scan in the given probe order.
    ///
    /// # Panics
    /// Panics if any constant's column index is out of range.
    pub fn filter_const_rows(
        &self,
        consts: &[(usize, Value)],
        start: usize,
        end: usize,
    ) -> Vec<u32> {
        let (s, e) = (start.min(self.rows), end.min(self.rows));
        if s >= e {
            return Vec::new();
        }
        if consts.is_empty() {
            return (s..e).map(|i| i as u32).collect();
        }
        // Range prune: a constant outside a column's observed range
        // cannot match any row.
        if consts
            .iter()
            .any(|&(c, v)| self.stats.get(c).is_some_and(|st| st.excludes(v)))
        {
            return Vec::new();
        }
        // Expected hit fraction of one probe, from the distinct sketch
        // (`None` when untracked: assume sparse).
        let hit_fraction = |c: usize| -> Option<f64> {
            let d = self.stats.get(c)?.distinct_estimate(self.rows).max(1);
            Some(1.0 / d as f64)
        };
        // Probe order: most selective constant first. `consts` is tiny
        // (one or two entries for real rules), so a scan for the minimum
        // beats sorting.
        let lead = (0..consts.len())
            .min_by(|&a, &b| {
                let fa = hit_fraction(consts[a].0).unwrap_or(0.0);
                let fb = hit_fraction(consts[b].0).unwrap_or(0.0);
                fa.total_cmp(&fb)
            })
            .expect("consts non-empty");
        let (c0, v0) = consts[lead];
        let frac = hit_fraction(c0).unwrap_or(0.0);

        /// Above this expected hit fraction the conditional scan's
        /// append branch mispredicts often enough that the branch-free
        /// compaction wins (measured crossover is between 1/50 and 1/4).
        const DENSE_FRACTION: f64 = 1.0 / 16.0;
        /// Below this many rows the compaction's chunk setup outweighs
        /// any misprediction savings.
        const DENSE_MIN_ROWS: usize = 1024;
        let col0 = &self.cols[c0][s..e];
        let mut ids: Vec<u32> = if frac < DENSE_FRACTION || col0.len() < DENSE_MIN_ROWS {
            // Sparse: conditional append, branch predicted "miss".
            col0.iter()
                .enumerate()
                .filter(|&(_, v)| *v == v0)
                .map(|(j, _)| (s + j) as u32)
                .collect()
        } else {
            // Dense: chunked branch-free compaction — every row does an
            // unconditional store plus a counter bump, so the cost per
            // row is flat no matter how unpredictable the hit pattern.
            const CHUNK: usize = 256;
            let mut out = Vec::with_capacity((col0.len() as f64 * frac) as usize + CHUNK);
            let mut buf = [0u32; CHUNK];
            let mut off = 0;
            while off < col0.len() {
                let m = CHUNK.min(col0.len() - off);
                let mut cnt = 0usize;
                for (j, v) in col0[off..off + m].iter().enumerate() {
                    buf[cnt] = (s + off + j) as u32;
                    cnt += usize::from(*v == v0);
                }
                out.extend_from_slice(&buf[..cnt]);
                off += m;
            }
            out
        };
        // Remaining probes re-check only the survivors.
        for (i, &(c, v)) in consts.iter().enumerate() {
            if i == lead {
                continue;
            }
            let col = &self.cols[c];
            ids.retain(|&r| col[r as usize] == v);
        }
        ids
    }

    /// Locates the stored row whose values equal `probe` (with `hash`
    /// precomputed over the same values) — the one dedup lookup shared by
    /// every insert/membership entry point.
    fn locate(&self, hash: u64, probe: impl Iterator<Item = Value> + Clone) -> Option<usize> {
        let eq = |r: usize| self.cols.iter().map(|c| c[r]).eq(probe.clone());
        match self.dedup.get(&hash)? {
            RowSlot::One(r) => {
                let r = *r as usize;
                eq(r).then_some(r)
            }
            RowSlot::Many(rs) => rs.iter().map(|&r| r as usize).find(|&r| eq(r)),
        }
    }

    /// Appends a row known to be absent; `values` must yield `arity` items.
    fn push_row(&mut self, hash: u64, values: impl Iterator<Item = Value>) {
        let id = u32::try_from(self.rows).expect("TupleStore exceeds u32 rows");
        let mut pushed = 0;
        for (c, v) in values.enumerate() {
            self.cols[c].push(v);
            if let Some(st) = self.stats.get_mut(c) {
                st.observe(v);
            }
            pushed += 1;
        }
        debug_assert_eq!(pushed, self.arity, "row arity mismatch in push_row");
        self.rows += 1;
        match self.dedup.entry(hash) {
            Entry::Vacant(e) => {
                e.insert(RowSlot::One(id));
            }
            Entry::Occupied(mut e) => match e.get_mut() {
                RowSlot::One(first) => {
                    let first = *first;
                    *e.get_mut() = RowSlot::Many(vec![first, id]);
                }
                RowSlot::Many(rs) => rs.push(id),
            },
        }
    }

    /// Inserts a row; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the row's arity does not match the store's.
    pub fn insert(&mut self, row: &[Value]) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        let hash = hash_values(row.iter().copied());
        if self.locate(hash, row.iter().copied()).is_some() {
            return false;
        }
        self.push_row(hash, row.iter().copied());
        true
    }

    /// Inserts a row built from a vector of values.
    pub fn insert_values(&mut self, values: Vec<Value>) -> bool {
        self.insert(&values)
    }

    /// Inserts a row viewed in another store (no intermediate allocation).
    ///
    /// # Panics
    /// Panics if the row's arity does not match the store's.
    pub fn insert_row(&mut self, row: RowRef<'_>) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        let hash = hash_values(row.iter());
        if self.locate(hash, row.iter()).is_some() {
            return false;
        }
        self.push_row(hash, row.iter());
        true
    }

    /// Bulk-inserts rows (deduplicating as usual).
    pub fn extend_rows<I>(&mut self, rows: I)
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        for row in rows {
            self.insert(&row);
        }
    }

    /// Membership test.
    pub fn contains(&self, row: &[Value]) -> bool {
        if row.len() != self.arity {
            return false;
        }
        let hash = hash_values(row.iter().copied());
        self.locate(hash, row.iter().copied()).is_some()
    }

    /// Membership test against a row viewed in another store.
    pub fn contains_row(&self, row: RowRef<'_>) -> bool {
        if row.len() != self.arity {
            return false;
        }
        let hash = hash_values(row.iter());
        self.locate(hash, row.iter()).is_some()
    }

    /// The `i`-th row in insertion order.
    #[inline]
    pub fn get(&self, i: usize) -> Option<RowRef<'_>> {
        (i < self.rows).then_some(RowRef {
            store: self,
            row: i,
        })
    }

    /// Iterates rows in insertion order as borrowed [`RowRef`] views.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> + Clone {
        (0..self.rows).map(move |row| RowRef { store: self, row })
    }

    /// Set equality (ignores insertion order).
    pub fn set_eq(&self, other: &TupleStore) -> bool {
        self.arity == other.arity
            && self.rows == other.rows
            && self.iter().all(|r| other.contains_row(r))
    }

    /// Returns the set of distinct values appearing in column `col`.
    pub fn column_values(&self, col: usize) -> HashSet<Value> {
        self.cols[col].iter().copied().collect()
    }

    /// Projects onto the given columns, returning the set of projected
    /// rows. The gather is a contiguous sweep over the column slices.
    pub fn project(&self, cols: &[usize]) -> HashSet<Vec<Value>> {
        let slices: Vec<&[Value]> = cols.iter().map(|&c| self.column(c)).collect();
        (0..self.rows)
            .map(|r| slices.iter().map(|s| s[r]).collect())
            .collect()
    }
}

impl PartialEq for TupleStore {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for TupleStore {}

impl FromIterator<Vec<Value>> for TupleStore {
    fn from_iter<I: IntoIterator<Item = Vec<Value>>>(iter: I) -> TupleStore {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, Vec::len);
        let mut store = TupleStore::new(arity);
        store.extend_rows(it);
        store
    }
}

impl fmt::Debug for TupleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleStore")
            .field("arity", &self.arity)
            .field("rows", &self.iter().collect::<Vec<_>>())
            .finish()
    }
}

/// A borrowed view of one row of a [`TupleStore`].
///
/// `RowRef` is two words (store pointer + row index) and `Copy`; indexing
/// resolves through the column vectors, so no tuple is ever materialized.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    store: &'a TupleStore,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.arity
    }

    /// `true` for rows of an arity-0 store.
    pub fn is_empty(&self) -> bool {
        self.store.arity == 0
    }

    /// The value in column `c`, or `None` when out of range.
    #[inline]
    pub fn get(&self, c: usize) -> Option<Value> {
        (c < self.store.arity).then(|| self.store.cols[c][self.row])
    }

    /// Iterates the row's values in column order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Value> + Clone + 'a {
        let RowRef { store, row } = *self;
        store.cols.iter().map(move |c| c[row])
    }

    /// Materializes the row as an owned vector.
    pub fn to_vec(&self) -> Vec<Value> {
        self.iter().collect()
    }
}

impl Index<usize> for RowRef<'_> {
    type Output = Value;

    #[inline]
    fn index(&self, c: usize) -> &Value {
        &self.store.cols[c][self.row]
    }
}

impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for RowRef<'_> {}

impl PartialEq<[Value]> for RowRef<'_> {
    fn eq(&self, other: &[Value]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<&[Value]> for RowRef<'_> {
    fn eq(&self, other: &&[Value]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<Value>> for RowRef<'_> {
    fn eq(&self, other: &Vec<Value>) -> bool {
        *self == other.as_slice()
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_dedups_and_keeps_order() {
        let mut s = TupleStore::new(2);
        assert!(s.insert(&t(&[1, 2])));
        assert!(s.insert(&t(&[3, 4])));
        assert!(!s.insert(&t(&[1, 2])));
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0), &[Value::Int(1), Value::Int(3)][..]);
        assert_eq!(s.column(1), &[Value::Int(2), Value::Int(4)][..]);
        let rows: Vec<Vec<Value>> = s.iter().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![t(&[1, 2]), t(&[3, 4])]);
    }

    #[test]
    fn row_ref_access() {
        let mut s = TupleStore::new(3);
        s.insert(&t(&[7, 8, 9]));
        let r = s.get(0).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[1], Value::Int(8));
        assert_eq!(r.get(2), Some(Value::Int(9)));
        assert_eq!(r.get(3), None);
        assert_eq!(r, t(&[7, 8, 9]));
        assert!(s.get(1).is_none());
    }

    #[test]
    fn contains_row_across_stores() {
        let mut a = TupleStore::new(2);
        a.insert(&t(&[1, 2]));
        let mut b = TupleStore::new(2);
        b.insert(&t(&[1, 2]));
        b.insert(&t(&[3, 4]));
        assert!(b.contains_row(a.get(0).unwrap()));
        assert!(!a.contains_row(b.get(1).unwrap()));
    }

    #[test]
    fn insert_row_copies_across_stores() {
        let mut a = TupleStore::new(2);
        a.insert(&t(&[1, 2]));
        a.insert(&t(&[3, 4]));
        let mut b = TupleStore::new(2);
        b.insert(&t(&[3, 4]));
        for r in a.iter() {
            b.insert_row(r);
        }
        assert_eq!(b.len(), 2);
        // b keeps its own insertion order: [3,4] first.
        assert_eq!(b.get(0).unwrap(), t(&[3, 4]));
        assert_eq!(b.get(1).unwrap(), t(&[1, 2]));
    }

    #[test]
    fn zero_arity_store_holds_at_most_one_row() {
        let mut s = TupleStore::new(0);
        assert!(s.insert(&[]));
        assert!(!s.insert(&[]));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&[]));
        assert!(s.get(0).unwrap().is_empty());
    }

    #[test]
    fn from_columns_bulk_load() {
        let s = TupleStore::from_columns(vec![t(&[1, 1, 2]), t(&[10, 10, 20])]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.len(), 2); // (1,10) deduplicated
        assert!(s.contains(&t(&[1, 10])));
        assert!(s.contains(&t(&[2, 20])));
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn from_columns_rejects_ragged_input() {
        TupleStore::from_columns(vec![t(&[1]), t(&[1, 2])]);
    }

    #[test]
    fn arity_mismatch_contains_is_false_not_panic() {
        let mut s = TupleStore::new(2);
        s.insert(&t(&[1, 2]));
        assert!(!s.contains(&t(&[1])));
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = TupleStore::new(1);
        a.extend_rows([t(&[1]), t(&[2])]);
        let mut b = TupleStore::new(1);
        b.extend_rows([t(&[2]), t(&[1])]);
        assert_eq!(a, b);
        b.insert(&t(&[3]));
        assert_ne!(a, b);
    }

    /// Reference semantics for `filter_const_rows`: a scalar scan.
    fn scalar_filter(s: &TupleStore, consts: &[(usize, Value)], lo: usize, hi: usize) -> Vec<u32> {
        (lo.min(s.len())..hi.min(s.len()))
            .filter(|&i| consts.iter().all(|&(c, v)| s.column(c)[i] == v))
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn filter_const_rows_matches_scalar_scan() {
        let mut s = TupleStore::new(3);
        for i in 0..5000i64 {
            s.insert(&[
                Value::Int(i % 13),
                Value::str(["x", "y", "z"][(i % 3) as usize]),
                Value::Int(i),
            ]);
        }
        let cases: Vec<Vec<(usize, Value)>> = vec![
            vec![(0, Value::Int(7))],
            vec![(1, Value::str("y"))],
            vec![(0, Value::Int(7)), (1, Value::str("y"))],
            vec![(0, Value::Int(999))], // absent: stats prune
            vec![(2, Value::Int(4999))],
        ];
        for consts in &cases {
            for (lo, hi) in [
                (0, usize::MAX),
                (0, 1000),
                (1023, 1025),
                (4096, 5000),
                (5000, 9000),
            ] {
                assert_eq!(
                    s.filter_const_rows(consts, lo, hi),
                    scalar_filter(&s, consts, lo, hi),
                    "consts {consts:?} range {lo}..{hi}"
                );
            }
        }
        // No constants: the whole (clamped) range.
        assert_eq!(s.filter_const_rows(&[], 10, 12), vec![10, 11]);
        // Empty / inverted ranges.
        assert!(s.filter_const_rows(&cases[0], 40, 40).is_empty());
        assert!(s.filter_const_rows(&cases[0], 100, 40).is_empty());
    }

    #[test]
    fn column_stats_track_inserted_values() {
        let mut s = TupleStore::new(2);
        for i in 0..100i64 {
            s.insert(&[Value::Int(i % 4), Value::Int(i)]);
        }
        let stats0 = s.column_stats(0).expect("tracked");
        assert_eq!(stats0.distinct_estimate(s.len()), 4);
        assert!(stats0.excludes(Value::Int(50)));
        assert!(!s.column_stats(1).expect("tracked").excludes(Value::Int(50)));
        assert!(s.column_stats(2).is_none(), "out of range");
        // Duplicate-row inserts are rejected and must not perturb stats.
        assert!(!s.insert(&[Value::Int(1), Value::Int(1)]));
        assert_eq!(
            s.column_stats(0)
                .expect("tracked")
                .distinct_estimate(s.len()),
            4
        );
    }

    #[test]
    fn untracked_store_filters_without_stats() {
        let mut tracked = TupleStore::new(2);
        let mut untracked = TupleStore::new_untracked(2);
        for i in 0..500i64 {
            let row = [Value::Int(i % 9), Value::Int(i)];
            tracked.insert(&row);
            untracked.insert(&row);
        }
        assert!(untracked.column_stats(0).is_none());
        // Same rows, same filter results — with and without the prune.
        for v in [3i64, 9, -1] {
            let consts = [(0usize, Value::Int(v))];
            assert_eq!(
                tracked.filter_const_rows(&consts, 0, usize::MAX),
                untracked.filter_const_rows(&consts, 0, usize::MAX),
                "constant {v}"
            );
        }
    }

    #[test]
    fn projection_gathers_columns() {
        let mut s = TupleStore::new(3);
        s.insert(&t(&[1, 2, 3]));
        s.insert(&t(&[1, 5, 3]));
        let p = s.project(&[0, 2]);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&t(&[1, 3])));
        assert_eq!(s.column_values(1).len(), 2);
    }
}
