use std::collections::HashMap;

use crate::error::SchemaError;
use crate::types::{DbKind, PrimType, Schema, TypeDef};

/// Programmatic schema construction.
///
/// ```
/// use dynamite_schema::{SchemaBuilder, PrimType, DbKind};
///
/// let schema = SchemaBuilder::new(DbKind::Document)
///     .record("Univ", |r| {
///         r.prim("id", PrimType::Int)
///             .prim("name", PrimType::Str)
///             .nested("Admit", |r| {
///                 r.prim("uid", PrimType::Int).prim("count", PrimType::Int)
///             })
///     })
///     .build()
///     .unwrap();
/// assert!(schema.is_nested("Admit"));
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    kind: DbKind,
    defs: HashMap<String, TypeDef>,
    top_level: Vec<String>,
    duplicate: Option<String>,
}

impl SchemaBuilder {
    /// Starts a schema of the given kind.
    pub fn new(kind: DbKind) -> Self {
        SchemaBuilder {
            kind,
            ..Default::default()
        }
    }

    /// Convenience: a relational schema builder.
    pub fn relational() -> Self {
        Self::new(DbKind::Relational)
    }

    /// Convenience: a document schema builder.
    pub fn document() -> Self {
        Self::new(DbKind::Document)
    }

    /// Convenience: a graph schema builder.
    pub fn graph() -> Self {
        Self::new(DbKind::Graph)
    }

    /// Adds a top-level record type.
    pub fn record(mut self, name: &str, f: impl FnOnce(RecordBuilder) -> RecordBuilder) -> Self {
        let rb = f(RecordBuilder::new(name));
        self.top_level.push(name.to_string());
        rb.install(&mut self.defs, &mut self.duplicate);
        self
    }

    /// Adds a graph node table: an id attribute plus primitive properties.
    ///
    /// Convenience for graph schemas (paper §3.1, Example 3).
    pub fn node(self, name: &str, id_attr: &str, props: &[(&str, PrimType)]) -> Self {
        self.record(name, |mut r| {
            r = r.prim(id_attr, PrimType::Int);
            for (p, t) in props {
                r = r.prim(p, *t);
            }
            r
        })
    }

    /// Adds a graph edge table with `source`/`target` columns named
    /// `src_attr`/`dst_attr`, plus primitive edge properties.
    pub fn edge(
        self,
        name: &str,
        src_attr: &str,
        dst_attr: &str,
        props: &[(&str, PrimType)],
    ) -> Self {
        self.record(name, |mut r| {
            r = r
                .prim(src_attr, PrimType::Int)
                .prim(dst_attr, PrimType::Int);
            for (p, t) in props {
                r = r.prim(p, *t);
            }
            r
        })
    }

    /// Validates and produces the [`Schema`].
    pub fn build(self) -> Result<Schema, SchemaError> {
        if let Some(d) = self.duplicate {
            return Err(SchemaError::DuplicateName(d));
        }
        Schema::from_parts(self.kind, self.defs, self.top_level)
    }
}

/// Builds one record type: its primitive attributes and nested records.
#[derive(Debug)]
pub struct RecordBuilder {
    name: String,
    attrs: Vec<String>,
    defs: Vec<(String, TypeDef)>,
    children: Vec<RecordBuilder>,
}

impl RecordBuilder {
    fn new(name: &str) -> Self {
        RecordBuilder {
            name: name.to_string(),
            attrs: Vec::new(),
            defs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds a primitive attribute.
    pub fn prim(mut self, name: &str, ty: PrimType) -> Self {
        self.attrs.push(name.to_string());
        self.defs.push((name.to_string(), TypeDef::Prim(ty)));
        self
    }

    /// Adds a nested record-typed attribute.
    pub fn nested(mut self, name: &str, f: impl FnOnce(RecordBuilder) -> RecordBuilder) -> Self {
        let rb = f(RecordBuilder::new(name));
        self.attrs.push(name.to_string());
        self.children.push(rb);
        self
    }

    fn install(self, defs: &mut HashMap<String, TypeDef>, duplicate: &mut Option<String>) {
        if defs
            .insert(self.name.clone(), TypeDef::Record(self.attrs))
            .is_some()
            && duplicate.is_none()
        {
            *duplicate = Some(self.name.clone());
        }
        for (n, d) in self.defs {
            if defs.insert(n.clone(), d).is_some() && duplicate.is_none() {
                *duplicate = Some(n);
            }
        }
        for c in self.children {
            c.install(defs, duplicate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_dsl() {
        let b = SchemaBuilder::document()
            .record("Univ", |r| {
                r.prim("id", PrimType::Int)
                    .prim("name", PrimType::Str)
                    .nested("Admit", |r| {
                        r.prim("uid", PrimType::Int).prim("count", PrimType::Int)
                    })
            })
            .build()
            .unwrap();
        let d = Schema::parse(
            "@document
             Univ { id: Int, name: String, Admit { uid: Int, count: Int } }",
        )
        .unwrap();
        assert_eq!(b.prim_attrs(), d.prim_attrs());
        assert_eq!(b.attrs("Univ"), d.attrs("Univ"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = SchemaBuilder::relational()
            .record("T", |r| r.prim("a", PrimType::Int))
            .record("U", |r| r.prim("a", PrimType::Int))
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateName("a".into()));
    }

    #[test]
    fn graph_helpers() {
        let g = SchemaBuilder::graph()
            .node("Actor", "aid", &[("aname", PrimType::Str)])
            .node("Movie", "mid", &[("title", PrimType::Str)])
            .edge("ACT_IN", "src", "dst", &[("role", PrimType::Str)])
            .build()
            .unwrap();
        assert_eq!(g.kind(), DbKind::Graph);
        assert_eq!(g.attrs("ACT_IN"), ["src", "dst", "role"]);
        assert!(!g.is_nested("ACT_IN"));
    }

    #[test]
    fn empty_record_rejected() {
        let err = SchemaBuilder::relational()
            .record("T", |r| r)
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::EmptyRecord("T".into()));
    }
}
