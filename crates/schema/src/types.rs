use std::collections::HashMap;
use std::fmt;

use crate::error::SchemaError;

/// Primitive attribute types supported by the schema formalism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimType {
    /// 64-bit signed integers.
    Int,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl fmt::Display for PrimType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimType::Int => write!(f, "Int"),
            PrimType::Str => write!(f, "String"),
            PrimType::Bool => write!(f, "Bool"),
        }
    }
}

/// Definition of a schema name: either a primitive type or a record type
/// listing its attribute names in declaration order (paper §3.1:
/// `T ::= τ | {N1, …, Nn}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDef {
    /// A primitive attribute.
    Prim(PrimType),
    /// A record type with ordered attribute names.
    Record(Vec<String>),
}

impl TypeDef {
    /// Returns `true` if this definition is a record type.
    pub fn is_record(&self) -> bool {
        matches!(self, TypeDef::Record(_))
    }
}

/// What kind of database a schema describes. Purely descriptive: the
/// formalism is uniform, but writers/readers and the paper's tables ("R",
/// "D", "G") distinguish the three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DbKind {
    /// Relational database: flat top-level records only.
    #[default]
    Relational,
    /// Document database: records may nest.
    Document,
    /// Graph database: node tables plus edge tables with
    /// `source`/`target` attributes (paper §3.1, Example 3).
    Graph,
}

impl DbKind {
    /// One-letter code used by Table 2 of the paper.
    pub fn code(self) -> &'static str {
        match self {
            DbKind::Relational => "R",
            DbKind::Document => "D",
            DbKind::Graph => "G",
        }
    }
}

impl fmt::Display for DbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbKind::Relational => write!(f, "relational"),
            DbKind::Document => write!(f, "document"),
            DbKind::Graph => write!(f, "graph"),
        }
    }
}

/// A validated schema: a mapping from names to type definitions with
/// globally unique names, acyclic nesting, and single-parent records.
///
/// Construct via [`Schema::parse`] (DSL) or [`crate::SchemaBuilder`].
#[derive(Debug, Clone)]
pub struct Schema {
    kind: DbKind,
    /// Name -> definition.
    defs: HashMap<String, TypeDef>,
    /// Name -> containing record type (for both nested records and
    /// attributes). Top-level records have no parent.
    parent: HashMap<String, String>,
    /// Record type names in declaration order (top-level first, then
    /// nested in discovery order) for deterministic iteration.
    record_order: Vec<String>,
    /// Top-level record type names in declaration order.
    top_level: Vec<String>,
}

impl Schema {
    /// Parses a schema from the DSL (see [`crate::parse_schema`]).
    pub fn parse(input: &str) -> Result<Schema, SchemaError> {
        crate::dsl::parse_schema(input)
    }

    pub(crate) fn from_parts(
        kind: DbKind,
        defs: HashMap<String, TypeDef>,
        top_level: Vec<String>,
    ) -> Result<Schema, SchemaError> {
        // Validate: all referenced names defined; every record nonempty.
        for (name, def) in &defs {
            if let TypeDef::Record(attrs) = def {
                if attrs.is_empty() {
                    return Err(SchemaError::EmptyRecord(name.clone()));
                }
                for a in attrs {
                    if !defs.contains_key(a) {
                        return Err(SchemaError::UndefinedName(a.clone()));
                    }
                }
            }
        }
        // Compute parents; detect multiple parents.
        let mut parent: HashMap<String, String> = HashMap::new();
        for (name, def) in &defs {
            if let TypeDef::Record(attrs) = def {
                for a in attrs {
                    if parent.insert(a.clone(), name.clone()).is_some() {
                        return Err(SchemaError::MultipleParents(a.clone()));
                    }
                }
            }
        }
        // Detect nesting cycles by chasing parents.
        for name in defs.keys() {
            let mut seen = 0usize;
            let mut cur = name.as_str();
            while let Some(p) = parent.get(cur) {
                cur = p;
                seen += 1;
                if seen > defs.len() {
                    return Err(SchemaError::RecursiveType(name.clone()));
                }
            }
        }
        // Deterministic record order: top-level records in declaration
        // order, each followed by its nested records depth-first.
        let mut record_order = Vec::new();
        fn visit(name: &str, defs: &HashMap<String, TypeDef>, out: &mut Vec<String>) {
            if let Some(TypeDef::Record(attrs)) = defs.get(name) {
                out.push(name.to_string());
                for a in attrs {
                    visit(a, defs, out);
                }
            }
        }
        for t in &top_level {
            visit(t, &defs, &mut record_order);
        }
        Ok(Schema {
            kind,
            defs,
            parent,
            record_order,
            top_level,
        })
    }

    /// The database kind this schema describes.
    pub fn kind(&self) -> DbKind {
        self.kind
    }

    /// Looks up the definition of `name`.
    pub fn def(&self, name: &str) -> Option<&TypeDef> {
        self.defs.get(name)
    }

    /// Returns `true` if `name` is a record type.
    pub fn is_record(&self, name: &str) -> bool {
        matches!(self.defs.get(name), Some(TypeDef::Record(_)))
    }

    /// Returns `true` if `name` is a primitive attribute.
    pub fn is_prim(&self, name: &str) -> bool {
        matches!(self.defs.get(name), Some(TypeDef::Prim(_)))
    }

    /// The primitive type of attribute `name`, if it is one.
    pub fn prim_type(&self, name: &str) -> Option<PrimType> {
        match self.defs.get(name) {
            Some(TypeDef::Prim(t)) => Some(*t),
            _ => None,
        }
    }

    /// Ordered attribute names of record type `record`.
    pub fn attrs(&self, record: &str) -> &[String] {
        match self.defs.get(record) {
            Some(TypeDef::Record(attrs)) => attrs,
            _ => &[],
        }
    }

    /// The containing record of an attribute or nested record
    /// (`parent(N) = N'` iff `N ∈ S(N')`).
    pub fn parent(&self, name: &str) -> Option<&str> {
        self.parent.get(name).map(String::as_str)
    }

    /// Returns `true` if record type `record` is nested inside another record.
    pub fn is_nested(&self, record: &str) -> bool {
        self.is_record(record) && self.parent.contains_key(record)
    }

    /// Top-level record types in declaration order.
    pub fn top_level_records(&self) -> impl Iterator<Item = &str> {
        self.top_level.iter().map(String::as_str)
    }

    /// All record types (top-level first, nested depth-first), deterministic.
    pub fn records(&self) -> impl Iterator<Item = &str> {
        self.record_order.iter().map(String::as_str)
    }

    /// All primitive attributes of the whole schema, in record order
    /// (`PrimAttrbs(S)` in the paper).
    pub fn prim_attrs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for r in &self.record_order {
            for a in self.attrs(r) {
                if self.is_prim(a) {
                    out.push(a.as_str());
                }
            }
        }
        out
    }

    /// Primitive attributes of `record` and everything transitively nested
    /// in it (`PrimAttrbs(N)` in Algorithm 2).
    pub fn prim_attrs_of(&self, record: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut stack = vec![record];
        while let Some(r) = stack.pop() {
            // Depth-first, preserving attribute order by pushing in reverse.
            let attrs = self.attrs(r);
            for a in attrs {
                if self.is_prim(a) {
                    out.push(a.as_str());
                }
            }
            for a in attrs.iter().rev() {
                if self.is_record(a) {
                    stack.push(a.as_str());
                }
            }
        }
        out
    }

    /// The record type that attribute `attr` belongs to (`RecName(a)`).
    pub fn record_of(&self, attr: &str) -> Option<&str> {
        if self.is_prim(attr) {
            self.parent(attr)
        } else {
            None
        }
    }

    /// The nesting chain from the top-level ancestor down to `record`
    /// (inclusive): `[top, …, record]`.
    pub fn chain_to<'s>(&'s self, record: &'s str) -> Vec<&'s str> {
        let mut chain = vec![record];
        let mut cur = record;
        while let Some(p) = self.parent.get(cur) {
            chain.push(p.as_str());
            cur = p.as_str();
        }
        chain.reverse();
        chain
    }

    /// Number of columns in the Datalog relation for `record`: one per
    /// attribute plus a leading parent-id column when nested (§3.3).
    pub fn fact_arity(&self, record: &str) -> usize {
        let n = self.attrs(record).len();
        if self.is_nested(record) {
            n + 1
        } else {
            n
        }
    }

    /// Total number of record types.
    pub fn num_records(&self) -> usize {
        self.record_order.len()
    }

    /// Total number of attributes across all record types (primitive and
    /// record-typed), as counted by Table 2 of the paper.
    pub fn num_attrs(&self) -> usize {
        self.record_order.iter().map(|r| self.attrs(r).len()).sum()
    }

    /// Renders the schema back to DSL syntax.
    pub fn to_dsl(&self) -> String {
        fn render(s: &Schema, record: &str, indent: usize, out: &mut String) {
            out.push_str(&"  ".repeat(indent));
            out.push_str(record);
            out.push_str(" {\n");
            for a in s.attrs(record) {
                match s.def(a) {
                    Some(TypeDef::Prim(t)) => {
                        out.push_str(&"  ".repeat(indent + 1));
                        out.push_str(&format!("{a}: {t},\n"));
                    }
                    Some(TypeDef::Record(_)) => {
                        render(s, a, indent + 1, out);
                    }
                    None => unreachable!("validated schema"),
                }
            }
            out.push_str(&"  ".repeat(indent));
            out.push_str("}\n");
        }
        let mut out = format!("@{}\n", self.kind);
        for t in &self.top_level {
            render(self, t, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn univ() -> Schema {
        Schema::parse(
            "@document
             Univ { id: Int, name: String, Admit { uid: Int, count: Int } }",
        )
        .unwrap()
    }

    #[test]
    fn motivating_example_queries() {
        let s = univ();
        assert_eq!(s.top_level_records().collect::<Vec<_>>(), vec!["Univ"]);
        assert_eq!(s.records().collect::<Vec<_>>(), vec!["Univ", "Admit"]);
        assert!(s.is_nested("Admit"));
        assert!(!s.is_nested("Univ"));
        assert_eq!(s.parent("Admit"), Some("Univ"));
        assert_eq!(s.parent("count"), Some("Admit"));
        assert_eq!(s.prim_attrs(), vec!["id", "name", "uid", "count"]);
        assert_eq!(s.prim_attrs_of("Univ"), vec!["id", "name", "uid", "count"]);
        assert_eq!(s.prim_attrs_of("Admit"), vec!["uid", "count"]);
        assert_eq!(s.record_of("count"), Some("Admit"));
        assert_eq!(s.chain_to("Admit"), vec!["Univ", "Admit"]);
        assert_eq!(s.chain_to("Univ"), vec!["Univ"]);
        assert_eq!(s.fact_arity("Univ"), 3);
        assert_eq!(s.fact_arity("Admit"), 3);
        assert_eq!(s.num_records(), 2);
        assert_eq!(s.num_attrs(), 5);
    }

    #[test]
    fn dsl_round_trip() {
        let s = univ();
        let s2 = Schema::parse(&s.to_dsl()).unwrap();
        assert_eq!(s2.prim_attrs(), s.prim_attrs());
        assert_eq!(s2.kind(), DbKind::Document);
        assert_eq!(
            s2.records().collect::<Vec<_>>(),
            s.records().collect::<Vec<_>>()
        );
    }

    #[test]
    fn fact_arity_counts_parent_column() {
        let s = univ();
        // Admit is nested: uid, count plus the parent-id column.
        assert_eq!(s.fact_arity("Admit"), 3);
    }

    #[test]
    fn deep_nesting_chain() {
        let s = Schema::parse(
            "@document
             A { x: Int, B { y: Int, C { z: Int } } }",
        )
        .unwrap();
        assert_eq!(s.chain_to("C"), vec!["A", "B", "C"]);
        assert_eq!(s.prim_attrs_of("A"), vec!["x", "y", "z"]);
        assert_eq!(s.fact_arity("C"), 2);
    }

    #[test]
    fn prim_attrs_of_respects_order_with_siblings() {
        let s = Schema::parse(
            "@document
             A { x: Int, B { y: Int }, C { z: Int }, w: Int }",
        )
        .unwrap();
        assert_eq!(s.prim_attrs_of("A"), vec!["x", "w", "y", "z"]);
    }
}
