use std::fmt;

/// Errors raised while constructing, parsing, or validating a [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two schema elements (record types or attributes) share a name.
    ///
    /// The paper's formalism (§3.1) maps *names* to definitions, so names
    /// must be globally unique across the whole schema.
    DuplicateName(String),
    /// A record type definition references an attribute that was never defined.
    UndefinedName(String),
    /// A record type participates in a nesting cycle; the paper restricts
    /// schemas to *non-recursive* record types.
    RecursiveType(String),
    /// A record type is nested inside more than one parent.
    MultipleParents(String),
    /// A record type has no attributes.
    EmptyRecord(String),
    /// Syntax error in the schema DSL, with a human-readable message and
    /// byte offset into the input.
    Parse { message: String, offset: usize },
    /// A name looked up on the schema does not exist.
    UnknownName(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateName(n) => write!(f, "duplicate schema name `{n}`"),
            SchemaError::UndefinedName(n) => write!(f, "undefined schema name `{n}`"),
            SchemaError::RecursiveType(n) => write!(f, "record type `{n}` is recursive"),
            SchemaError::MultipleParents(n) => {
                write!(f, "record type `{n}` is nested in more than one parent")
            }
            SchemaError::EmptyRecord(n) => write!(f, "record type `{n}` has no attributes"),
            SchemaError::Parse { message, offset } => {
                write!(f, "schema parse error at byte {offset}: {message}")
            }
            SchemaError::UnknownName(n) => write!(f, "unknown schema name `{n}`"),
        }
    }
}

impl std::error::Error for SchemaError {}
