//! A small text DSL for schemas.
//!
//! Grammar (comments start with `//` or `#` and run to end of line):
//!
//! ```text
//! schema  := kind? record*
//! kind    := '@relational' | '@document' | '@graph'
//! record  := NAME '{' field (',' field)* ','? '}'
//! field   := NAME ':' prim        // primitive attribute
//!          | record               // nested record type
//! prim    := 'Int' | 'String' | 'Bool'
//! ```

use std::collections::HashMap;

use crate::error::SchemaError;
use crate::types::{DbKind, PrimType, Schema, TypeDef};

/// Parses the schema DSL. See the module-level documentation for the grammar.
pub fn parse_schema(input: &str) -> Result<Schema, SchemaError> {
    let mut p = Parser {
        src: input.as_bytes(),
        pos: 0,
    };
    let mut kind = DbKind::Relational;
    p.skip_ws();
    if p.peek() == Some(b'@') {
        p.pos += 1;
        let word = p.ident()?;
        kind = match word.as_str() {
            "relational" => DbKind::Relational,
            "document" => DbKind::Document,
            "graph" => DbKind::Graph,
            other => {
                return Err(p.err(format!(
                    "unknown schema kind `@{other}` (expected @relational, @document, or @graph)"
                )))
            }
        };
    }
    let mut defs = HashMap::new();
    let mut top_level = Vec::new();
    let mut duplicate = None;
    p.skip_ws();
    while !p.at_end() {
        let name = p.record(&mut defs, &mut duplicate)?;
        top_level.push(name);
        p.skip_ws();
    }
    if let Some(d) = duplicate {
        return Err(SchemaError::DuplicateName(d));
    }
    if top_level.is_empty() {
        return Err(SchemaError::Parse {
            message: "schema defines no record types".into(),
            offset: 0,
        });
    }
    Schema::from_parts(kind, defs, top_level)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: String) -> SchemaError {
        SchemaError::Parse {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
                self.pos += 1;
            }
            match self.peek() {
                Some(b'#') => self.skip_line(),
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => self.skip_line(),
                _ => break,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == b'\n' {
                break;
            }
        }
    }

    fn ident(&mut self) -> Result<String, SchemaError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier".into()));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), SchemaError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    /// Parses one record definition; installs it (and nested records) into
    /// `defs` and returns the record's name.
    fn record(
        &mut self,
        defs: &mut HashMap<String, TypeDef>,
        duplicate: &mut Option<String>,
    ) -> Result<String, SchemaError> {
        self.skip_ws();
        let name = self.ident()?;
        self.expect(b'{')?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let save = self.pos;
            let field = self.ident()?;
            self.skip_ws();
            match self.peek() {
                Some(b':') => {
                    self.pos += 1;
                    self.skip_ws();
                    let ty = self.ident()?;
                    let prim = match ty.as_str() {
                        "Int" => PrimType::Int,
                        "String" | "Str" => PrimType::Str,
                        "Bool" => PrimType::Bool,
                        other => {
                            return Err(self.err(format!(
                                "unknown primitive type `{other}` (expected Int, String, Bool)"
                            )))
                        }
                    };
                    attrs.push(field.clone());
                    if defs.insert(field.clone(), TypeDef::Prim(prim)).is_some()
                        && duplicate.is_none()
                    {
                        *duplicate = Some(field);
                    }
                }
                Some(b'{') => {
                    // Nested record: re-parse from the name.
                    self.pos = save;
                    let nested = self.record(defs, duplicate)?;
                    attrs.push(nested);
                }
                _ => return Err(self.err("expected `:` or `{` after field name".into())),
            }
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            }
        }
        if defs.insert(name.clone(), TypeDef::Record(attrs)).is_some() && duplicate.is_none() {
            *duplicate = Some(name.clone());
        }
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_relational_default_kind() {
        let s = parse_schema("User { uid: Int, uname: String, addr: String }").unwrap();
        assert_eq!(s.kind(), DbKind::Relational);
        assert_eq!(s.attrs("User"), ["uid", "uname", "addr"]);
    }

    #[test]
    fn parses_trailing_commas_and_comments() {
        let s = parse_schema(
            "@document
             // universities
             Univ {
               id: Int,   # primary key
               name: String,
               Admit { uid: Int, count: Int, },
             }",
        )
        .unwrap();
        assert_eq!(s.prim_attrs(), vec!["id", "name", "uid", "count"]);
    }

    #[test]
    fn rejects_unknown_kind() {
        let e = parse_schema("@nosql T { a: Int }").unwrap_err();
        assert!(matches!(e, SchemaError::Parse { .. }));
    }

    #[test]
    fn rejects_unknown_type() {
        let e = parse_schema("T { a: Float128 }").unwrap_err();
        assert!(matches!(e, SchemaError::Parse { .. }));
    }

    #[test]
    fn rejects_duplicate_attribute_names_across_records() {
        let e = parse_schema("T { a: Int } U { a: Int }").unwrap_err();
        assert_eq!(e, SchemaError::DuplicateName("a".into()));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_schema("").is_err());
        assert!(parse_schema("   // nothing\n").is_err());
    }

    #[test]
    fn multiple_top_level_records() {
        let s = parse_schema(
            "@relational
             Emp { ename: String, deptId: Int }
             Dept { did: Int, dname: String }",
        )
        .unwrap();
        assert_eq!(
            s.top_level_records().collect::<Vec<_>>(),
            vec!["Emp", "Dept"]
        );
        assert_eq!(s.num_attrs(), 4);
    }
}
