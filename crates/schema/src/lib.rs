//! Record-type schema representation for Dynamite (paper §3.1).
//!
//! A schema `S` maps *names* to *type definitions*: a name is either a
//! record type (relational table, JSON document, graph node/edge table) or
//! an attribute of primitive type. Nested record types (e.g. a JSON array
//! of sub-documents) are record types that appear as an attribute of
//! another record type.
//!
//! ```
//! use dynamite_schema::{Schema, PrimType};
//!
//! // The motivating example from §2 of the paper.
//! let schema = Schema::parse(
//!     "@document
//!      Univ { id: Int, name: String, Admit { uid: Int, count: Int } }",
//! )
//! .unwrap();
//!
//! assert_eq!(schema.top_level_records().collect::<Vec<_>>(), vec!["Univ"]);
//! assert!(schema.is_nested("Admit"));
//! assert_eq!(schema.parent("Admit"), Some("Univ"));
//! assert_eq!(schema.prim_type("count"), Some(PrimType::Int));
//! ```

mod builder;
mod dsl;
mod error;
mod types;

pub use builder::{RecordBuilder, SchemaBuilder};
pub use dsl::parse_schema;
pub use error::SchemaError;
pub use types::{DbKind, PrimType, Schema, TypeDef};
